/**
 * @file
 * Span tracer: RAII scoped spans with nesting and wall time.
 *
 * A span covers one phase of work (place, route, one annealing
 * temperature step). Spans nest lexically; the tracer records each
 * completed span with its start offset, duration, and nesting depth.
 * Completed spans export as Chrome trace-event JSON (complete "X"
 * events, loadable in chrome://tracing) or as a flat JSON-lines
 * event log; both conversions live in obs/report.hh so this layer
 * stays free of JSON dependencies.
 *
 * Spans are cheap when tracing is disabled: ScopedSpan's constructor
 * checks the global switch first and records nothing. The tracer,
 * like the rest of the library, is single-threaded; every span lands
 * on the same conceptual track.
 */

#ifndef PARCHMINT_OBS_TRACE_HH
#define PARCHMINT_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.hh"

namespace parchmint::obs
{

/** One completed span. */
struct SpanEvent
{
    std::string name;
    /** Coarse grouping ("place", "route", ...); may be empty. */
    std::string category;
    /** Start offset from the tracer epoch, microseconds. */
    int64_t startUs = 0;
    /** Wall-time duration, microseconds. */
    int64_t durationUs = 0;
    /** Nesting depth at entry; 0 for a root span. */
    int depth = 0;
};

/**
 * Collects completed spans. Events append in completion order
 * (children before their parents), each stamped with the nesting
 * depth it was entered at.
 */
class Tracer
{
  public:
    Tracer()
        : epoch_(Clock::now())
    {
    }

    /** Enter a span: returns its depth and deepens the stack. */
    int
    enter()
    {
        return depth_++;
    }

    /** Complete the innermost open span. */
    void
    complete(std::string name, std::string category,
             Clock::time_point start, int depth)
    {
        --depth_;
        events_.push_back(SpanEvent{
            std::move(name), std::move(category),
            microsBetween(epoch_, start),
            microsBetween(start, Clock::now()), depth});
    }

    /** Completed spans, children before parents. */
    const std::vector<SpanEvent> &events() const { return events_; }

    /** Current nesting depth (open spans). */
    int depth() const { return depth_; }

    /** Drop recorded events and restart the epoch. */
    void
    clear()
    {
        events_.clear();
        depth_ = 0;
        epoch_ = Clock::now();
    }

  private:
    Clock::time_point epoch_;
    std::vector<SpanEvent> events_;
    int depth_ = 0;
};

/**
 * RAII span: enters the global tracer on construction (when
 * observability is enabled) and completes itself on destruction.
 * Prefer the PM_OBS_SPAN macro, which compiles out entirely under
 * PARCHMINT_OBS_DISABLED.
 */
class ScopedSpan
{
  public:
    /**
     * Literal-name span: when disabled this costs one branch and
     * never copies the strings.
     */
    explicit ScopedSpan(const char *name,
                        const char *category = "");

    /** Dynamic-name span for per-object names. */
    explicit ScopedSpan(std::string name,
                        std::string category = "");

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan();

  private:
    std::string name_;
    std::string category_;
    Clock::time_point start_;
    int depth_ = 0;
    bool active_ = false;
};

} // namespace parchmint::obs

#endif // PARCHMINT_OBS_TRACE_HH
