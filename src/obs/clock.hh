/**
 * @file
 * Monotonic time helpers for the observability layer.
 *
 * Everything measures with steady_clock: span durations and
 * stopwatch readings must never jump when the wall clock is
 * adjusted. Wall-clock timestamps (for run-report metadata) are the
 * caller's job and travel as preformatted strings.
 */

#ifndef PARCHMINT_OBS_CLOCK_HH
#define PARCHMINT_OBS_CLOCK_HH

#include <chrono>
#include <cstdint>

namespace parchmint::obs
{

/** The clock every span and stopwatch reads. */
using Clock = std::chrono::steady_clock;

/** Microseconds from @p start to @p stop. */
inline int64_t
microsBetween(Clock::time_point start, Clock::time_point stop)
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               stop - start)
        .count();
}

/**
 * Wall-clock stopwatch reporting milliseconds. The library's one
 * ad-hoc timer; bench harnesses and reports that need a duration
 * without a span use this.
 */
class Stopwatch
{
  public:
    Stopwatch()
        : start_(Clock::now())
    {
    }

    /** Milliseconds since construction or the last reset. */
    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   Clock::now() - start_)
            .count();
    }

    /** Microseconds since construction or the last reset. */
    int64_t
    elapsedUs() const
    {
        return microsBetween(start_, Clock::now());
    }

    void
    reset()
    {
        start_ = Clock::now();
    }

  private:
    Clock::time_point start_;
};

} // namespace parchmint::obs

#endif // PARCHMINT_OBS_CLOCK_HH
