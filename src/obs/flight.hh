/**
 * @file
 * Flight recorder: a lock-free ring buffer journaling request
 * lifecycle events, readable three ways — a normal snapshot for
 * /logz, and an async-signal-safe dump to stderr plus a crash file
 * when the process dies on SIGSEGV/SIGABRT.
 *
 * The design constraint is the crash path. A signal handler may
 * interrupt any thread at any instruction, so the dump can use
 * only async-signal-safe calls (write(2), open(2)) and can take no
 * locks — which forces the recorder itself to be lock-free and its
 * slots to be self-describing PODs:
 *
 *  - Writers claim a slot with one fetch_add on the head counter,
 *    then publish through a per-slot *marker* word (a seqlock):
 *    marker = seq*2+1 while the slot is being filled, seq*2+2 once
 *    complete. A reader (snapshot or crash dump) accepts a slot
 *    only when the marker shows "complete" for the sequence it
 *    expects, so a torn half-written slot is skipped, never
 *    emitted.
 *  - Slots hold fixed char arrays, not std::string: the trace ID
 *    (its alphabet is JSON-safe by construction) and a detail
 *    string *sanitized at record time* — any byte that would need
 *    JSON escaping is replaced with '_' — so the crash dump can
 *    write slot bytes verbatim between quotes without an escaper.
 *  - The dump formats integers with a hand-rolled itoa into a
 *    stack buffer; no malloc, no stdio.
 *
 * Capacity is fixed at configure() time (default 2048 slots ≈ 200
 * KiB): at 1k req/s with 2 events per request, the ring holds the
 * last ~1 s of traffic — enough to see what the daemon was doing
 * when it died, small enough to never matter. Events wrap; /logz
 * and the crash file always show the newest `capacity` events.
 */

#ifndef PARCHMINT_OBS_FLIGHT_HH
#define PARCHMINT_OBS_FLIGHT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parchmint::obs::flight
{

/** Request lifecycle moments the recorder journals. */
enum class EventType : uint8_t
{
    RequestStart = 1,
    RequestEnd = 2,
    CacheHit = 3,
    Admission = 4,
    Cancel = 5,
    Note = 6,
};

/** "request_start", "cache_hit", ... */
const char *eventTypeName(EventType type);

/** A decoded ring slot (snapshot view). */
struct Event
{
    uint64_t sequence = 0;
    int64_t tsUs = 0;
    EventType type = EventType::Note;
    int status = 0;
    std::string trace;
    std::string detail;
};

/**
 * Size the ring to @p capacity slots (rounded up to a power of
 * two). Call once at startup, before traffic; calling after
 * events exist discards them.
 */
void configure(size_t capacity);

/**
 * Journal one event. Lock-free: one fetch_add plus POD stores.
 * @p trace is truncated to 31 bytes, @p detail to 47; bytes that
 * would need JSON escaping become '_'.
 */
void note(EventType type, std::string_view trace,
          std::string_view detail, int status = 0);

/** Events recorded over the process lifetime. */
uint64_t recorded();

/** Decode the current ring contents, oldest first. */
std::vector<Event> snapshot();

/** The snapshot as JSONL (one {"seq":...} object per line). */
std::string toJsonLines();

/**
 * Write the ring to @p fd as JSONL, preceded by a header line
 * {"type":"crash","signal":S,...} when @p signal is nonzero.
 * Async-signal-safe: write(2) only, no allocation, no locks.
 */
void dumpTo(int fd, int signal);

/**
 * Install SIGSEGV/SIGABRT handlers that dump the ring to stderr
 * and to @p crashPath (truncated to 511 bytes), then re-raise with
 * the default disposition. Idempotent; the latest path wins.
 */
void installCrashHandlers(const std::string &crashPath);

/** Drop all events and reset counters (tests). */
void resetForTest();

} // namespace parchmint::obs::flight

#endif // PARCHMINT_OBS_FLIGHT_HH
