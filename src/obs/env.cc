#include "obs/env.hh"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#if !defined(_WIN32)
#include <sys/utsname.h>
#include <unistd.h>
#endif

#include "common/rng.hh"
#include "common/strings.hh"
#include "json/write.hh"

namespace parchmint::obs
{

namespace
{

/** First "model name" entry of /proc/cpuinfo, or "unknown". */
std::string
cpuModelName()
{
#if defined(__linux__)
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string key = trim(line.substr(0, colon));
        if (key == "model name" || key == "Model" ||
            key == "cpu model") {
            std::string value = trim(line.substr(colon + 1));
            if (!value.empty())
                return value;
        }
    }
#endif
    return "unknown";
}

/** Total physical memory in bytes, or 0 when undeterminable. */
int64_t
physicalMemoryBytes()
{
#if !defined(_WIN32)
    long pages = sysconf(_SC_PHYS_PAGES);
    long page_size = sysconf(_SC_PAGE_SIZE);
    if (pages > 0 && page_size > 0)
        return static_cast<int64_t>(pages) *
               static_cast<int64_t>(page_size);
#endif
    return 0;
}

std::string
compilerVersion()
{
#if defined(__clang__)
    return "clang " __VERSION__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#elif defined(__VERSION__)
    return "unknown " __VERSION__;
#else
    return "unknown";
#endif
}

json::Value
sanitizerList()
{
    json::Value list = json::Value::makeArray();
#if defined(__SANITIZE_ADDRESS__)
    list.append(json::Value("address"));
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    list.append(json::Value("address"));
#endif
#endif
#if defined(__SANITIZE_THREAD__)
    list.append(json::Value("thread"));
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
    list.append(json::Value("thread"));
#endif
#endif
    // UBSan defines no feature macro; fall back to the recorded
    // compile flags so `-fsanitize=undefined` builds still declare
    // themselves.
#if defined(PARCHMINT_CXX_FLAGS)
    if (std::string(PARCHMINT_CXX_FLAGS).find("undefined") !=
        std::string::npos) {
        list.append(json::Value("undefined"));
    }
#endif
    return list;
}

} // namespace

json::Value
buildSystemJson()
{
    std::string os = "unknown";
    std::string kernel = "unknown";
    std::string arch = "unknown";
    std::string hostname = "unknown";
#if !defined(_WIN32)
    struct utsname names{};
    if (uname(&names) == 0) {
        os = toLower(names.sysname);
        kernel = names.release;
        arch = names.machine;
        hostname = names.nodename;
    }
#else
    os = "windows";
#endif

#if defined(PARCHMINT_CXX_FLAGS)
    const char *flags = PARCHMINT_CXX_FLAGS;
#else
    const char *flags = "";
#endif
#if defined(PARCHMINT_BUILD_TYPE)
    const char *build_type = PARCHMINT_BUILD_TYPE;
#elif defined(NDEBUG)
    const char *build_type = "release";
#else
    const char *build_type = "debug";
#endif
#if defined(PARCHMINT_GIT_SHA)
    const char *git_sha = PARCHMINT_GIT_SHA;
#else
    const char *git_sha = "unknown";
#endif
#if defined(PARCHMINT_GIT_DIRTY) && PARCHMINT_GIT_DIRTY
    bool git_dirty = true;
#else
    bool git_dirty = false;
#endif

    json::Value system = json::Value::makeObject({
        {"os", json::Value(os)},
        {"kernel", json::Value(kernel)},
        {"arch", json::Value(arch)},
        {"hostname", json::Value(hostname)},
        {"cpuModel", json::Value(cpuModelName())},
        {"hardwareThreads",
         json::Value(static_cast<int64_t>(
             std::thread::hardware_concurrency()))},
        {"memoryBytes", json::Value(physicalMemoryBytes())},
        {"compiler", json::Value(compilerVersion())},
        {"compilerFlags", json::Value(flags)},
        {"buildType", json::Value(build_type)},
        {"sanitizers", sanitizerList()},
        {"pointerBits",
         json::Value(static_cast<int64_t>(sizeof(void *) * 8))},
        {"gitSha", json::Value(git_sha)},
        {"gitDirty", json::Value(git_dirty)},
    });
    system.set("env_id", json::Value(envIdOf(system)));
    return system;
}

std::string
envIdOf(const json::Value &system)
{
    // Hash the canonical compact text of the identity-bearing
    // fields: hostname names one machine, not a measurement
    // platform, and env_id itself must not feed its own digest.
    json::Value identity = system;
    identity.erase("hostname");
    identity.erase("env_id");
    json::WriteOptions compact;
    compact.pretty = false;
    uint64_t digest =
        deriveSeed(0x70617263686d696eULL /* "parchmin" */,
                   json::write(identity, compact));
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "env-%016llx",
                  static_cast<unsigned long long>(digest));
    return buffer;
}

const json::Value &
systemJson()
{
    static const json::Value snapshot = buildSystemJson();
    return snapshot;
}

const std::string &
envId()
{
    static const std::string id =
        systemJson().at("env_id").asString();
    return id;
}

} // namespace parchmint::obs
