#include "obs/trace.hh"

#include "obs/obs.hh"
#include "obs/profiler.hh"
#include "obs/reqtrace.hh"

namespace parchmint::obs
{

namespace
{

/**
 * Per-thread span state. Depth is thread-local so concurrent
 * workers nest independently; the track number gives each worker a
 * stable lane in merged reports.
 */
struct ThreadSpanState
{
    int depth = 0;
    int track = 0;
};

thread_local ThreadSpanState t_span_state;

} // namespace

int
Tracer::enter()
{
    return t_span_state.depth++;
}

void
Tracer::complete(std::string name, std::string category,
                 Clock::time_point start, int depth)
{
    --t_span_state.depth;
    SpanEvent event{std::move(name), std::move(category), 0, 0,
                    depth, t_span_state.track,
                    reqtrace::currentTraceId()};
    Clock::time_point stop = Clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    event.startUs = microsBetween(epoch_, start);
    event.durationUs = microsBetween(start, stop);
    events_.push_back(std::move(event));
}

void
Tracer::setCurrentThreadTrack(int track)
{
    t_span_state.track = track;
}

int
Tracer::currentThreadTrack()
{
    return t_span_state.track;
}

int
Tracer::depth() const
{
    return t_span_state.depth;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    t_span_state.depth = 0;
    epoch_ = Clock::now();
}

ScopedSpan::ScopedSpan(const char *name, const char *category)
{
    bool profiling = prof::samplingActive();
    if (!enabled() && !profiling)
        return;
    name_ = name;
    category_ = category;
    if (profiling) {
        // The SIGPROF handler reads name_'s bytes; it interrupts
        // this same thread, so the string outlives every read.
        prof::detail::pushFrame(name_.c_str());
        profFrame_ = true;
    }
    if (!enabled())
        return;
    active_ = true;
    depth_ = tracer().enter();
    start_ = Clock::now();
}

ScopedSpan::ScopedSpan(std::string name, std::string category)
{
    bool profiling = prof::samplingActive();
    if (!enabled() && !profiling)
        return;
    name_ = std::move(name);
    category_ = std::move(category);
    if (profiling) {
        prof::detail::pushFrame(name_.c_str());
        profFrame_ = true;
    }
    if (!enabled())
        return;
    active_ = true;
    depth_ = tracer().enter();
    start_ = Clock::now();
}

ScopedSpan::~ScopedSpan()
{
    if (profFrame_)
        prof::detail::popFrame();
    if (!active_)
        return;
    tracer().complete(std::move(name_), std::move(category_),
                      start_, depth_);
}

} // namespace parchmint::obs
