#include "obs/trace.hh"

#include "obs/obs.hh"

namespace parchmint::obs
{

ScopedSpan::ScopedSpan(const char *name, const char *category)
{
    if (!enabled())
        return;
    active_ = true;
    name_ = name;
    category_ = category;
    depth_ = tracer().enter();
    start_ = Clock::now();
}

ScopedSpan::ScopedSpan(std::string name, std::string category)
{
    if (!enabled())
        return;
    active_ = true;
    name_ = std::move(name);
    category_ = std::move(category);
    depth_ = tracer().enter();
    start_ = Clock::now();
}

ScopedSpan::~ScopedSpan()
{
    if (!active_)
        return;
    tracer().complete(std::move(name_), std::move(category_),
                      start_, depth_);
}

} // namespace parchmint::obs
