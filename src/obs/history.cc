#include "obs/history.hh"

#include <cstdio>
#include <fstream>
#include <map>

#include "common/error.hh"
#include "json/parse.hh"
#include "json/write.hh"

namespace parchmint::obs
{

json::Value
summarizeReport(const json::Value &report)
{
    json::Value record = json::Value::makeObject();
    record.set("schema", json::Value("parchmint-run-history-v2"));
    for (const char *key :
         {"tool", "timestamp", "manifest_version", "notes",
          "environment", "system", "metrics"}) {
        if (report.isObject() && report.find(key))
            record.set(key, *report.find(key));
    }

    // Fold the trace-event stream into per-span-name totals; a
    // history record keeps the aggregate, not the timeline.
    std::map<std::string, std::pair<int64_t, int64_t>> totals;
    const json::Value *events =
        report.isObject() ? report.find("traceEvents") : nullptr;
    if (events && events->isArray()) {
        for (const json::Value &event : events->elements()) {
            if (!event.isObject() || !event.find("name") ||
                !event.find("dur")) {
                continue;
            }
            auto &[count, total_us] =
                totals[event.at("name").asString()];
            ++count;
            total_us += event.at("dur").asInteger();
        }
    }
    json::Value spans = json::Value::makeObject();
    for (const auto &[name, total] : totals) {
        spans.set(name, json::Value::makeObject({
                            {"count", json::Value(total.first)},
                            {"totalUs", json::Value(total.second)},
                        }));
    }
    record.set("spans", std::move(spans));
    return record;
}

json::Value
buildHistoryRecord(const RunInfo &info)
{
    return summarizeReport(buildRunReport(info));
}

void
appendHistory(const std::string &path, const RunInfo &info)
{
    json::WriteOptions compact;
    compact.pretty = false;
    std::ofstream file(path, std::ios::binary | std::ios::app);
    if (!file)
        fatal("cannot append run history to '" + path + "'");
    file << json::write(buildHistoryRecord(info), compact) << '\n';
    if (!file.flush())
        fatal("error writing run history to '" + path + "'");
}

std::vector<json::Value>
readHistory(const std::string &path, size_t *skipped)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        fatal("cannot read run history '" + path + "'");
    std::vector<json::Value> records;
    std::string line;
    size_t line_number = 0;
    size_t bad = 0;
    while (std::getline(file, line)) {
        ++line_number;
        bool blank = true;
        for (char c : line) {
            if (c != ' ' && c != '\t' && c != '\r')
                blank = false;
        }
        if (blank)
            continue;
        // A crash mid-append leaves a truncated (or otherwise
        // corrupt) line behind; one bad record must not cost the
        // whole trajectory, so skip it with a warning and keep
        // loading.
        try {
            records.push_back(json::parse(line));
        } catch (const json::ParseError &error) {
            ++bad;
            std::fprintf(stderr,
                         "warning: %s:%zu: skipping corrupt "
                         "history line (%s)\n",
                         path.c_str(), line_number, error.what());
        }
    }
    if (skipped)
        *skipped = bad;
    return records;
}

} // namespace parchmint::obs
