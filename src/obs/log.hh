/**
 * @file
 * Structured JSONL logger with levels and per-site token-bucket
 * rate limiting.
 *
 * One line per event, one JSON object per line:
 *
 *   {"ts_us":1722945600123456,"level":"info","site":"svc.request",
 *    "trace":"4f2a...","msg":"served","fields":{"status":"200",
 *    "ms":"1.42"}}
 *
 * `ts_us` is wall-clock microseconds since the Unix epoch; `trace`
 * is the ambient request context (obs/reqtrace.hh) and is omitted
 * when none is installed; `fields` preserves the caller's key
 * order. Serialization is hand-rolled (this layer sits in the obs
 * core, below pm_json) with full string escaping, so any message
 * survives the trip.
 *
 * Cost contract, mirroring the span/metric macros: a PM_LOG_*
 * site below the configured level — including the logger's
 * default "off" state — costs one relaxed atomic load and a
 * compare. Everything else (timestamping, bucket lookup,
 * formatting, the sink write) happens only for lines that pass.
 *
 * Rate limiting is per *site* (the dotted site string identifies a
 * call site): each site owns a token bucket refilled at
 * `ratePerSecond` up to `burst`. A line arriving to an empty
 * bucket is dropped and counted — never blocked on — and the
 * dropped totals are visible via stats() so a scrape (or CI) can
 * assert that nothing was lost. Refill 0 makes the budget fixed,
 * which the determinism-minded benches use.
 *
 * The logger is process-global (obs::logger()) and thread-safe:
 * one mutex guards the sink and the buckets, the same shared-sink
 * discipline the tracer and registry use.
 */

#ifndef PARCHMINT_OBS_LOG_HH
#define PARCHMINT_OBS_LOG_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/clock.hh"

namespace parchmint::obs
{

/** Severity ladder; Off disables every site. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

/** "debug", "info", "warn", "error", "off". */
const char *logLevelName(LogLevel level);

/** Parse a level name; false (and @p out untouched) when unknown. */
bool parseLogLevel(std::string_view text, LogLevel &out);

/** One structured key/value pair on a log line. */
struct LogField
{
    std::string key;
    std::string value;
};

/** Rate-limit knobs, applied per site. */
struct LogRateLimit
{
    /** Bucket capacity: lines a silent site may burst. */
    double burst = 100.0;
    /** Refill rate, lines per second; 0 = no refill. */
    double ratePerSecond = 200.0;
};

/** Counters a scrape reads; see Logger::stats(). */
struct LogStats
{
    uint64_t written = 0;
    uint64_t dropped = 0;
};

/** See file comment. */
class Logger
{
  public:
    /**
     * Attach a sink and enable the logger at @p level. The FILE*
     * must stay valid until the next setSink/disable; the logger
     * never closes it (stderr and test sinks stay safe).
     */
    void setSink(std::FILE *sink, LogLevel level);

    /**
     * Open @p path for appending and log into it.
     * @throws UserError when the file cannot be opened.
     */
    void openSink(const std::string &path, LogLevel level);

    /** Detach the sink; the logger reads as Off. */
    void disable();

    /** Replace the rate-limit knobs (existing buckets reset). */
    void setRateLimit(LogRateLimit limit);

    /** The effective level (Off when no sink is attached). */
    LogLevel level() const
    {
        return static_cast<LogLevel>(
            level_.load(std::memory_order_relaxed));
    }

    /** The one-branch gate the PM_LOG_* macros check. */
    bool enabledFor(LogLevel level) const
    {
        return static_cast<int>(level) >=
               level_.load(std::memory_order_relaxed);
    }

    /**
     * Emit one line (rate limits permitting). The ambient trace
     * context is attached automatically. Call through the
     * PM_LOG_* macros so filtered sites stay one branch.
     */
    void log(LogLevel level, std::string_view site,
             std::string_view message,
             std::vector<LogField> fields = {});

    /** Written/dropped totals since the last reset. */
    LogStats stats() const;

    /** Dropped lines for one site (0 when never throttled). */
    uint64_t droppedAt(const std::string &site) const;

    /** Detach the sink and zero counters/buckets (tests). */
    void resetForTest();

  private:
    struct Bucket
    {
        double tokens = 0.0;
        Clock::time_point lastRefill;
        uint64_t dropped = 0;
        bool initialized = false;
    };

    /** Off until a sink is attached; mirrors level under sink_. */
    std::atomic<int> level_{static_cast<int>(LogLevel::Off)};
    mutable std::mutex mutex_;
    std::FILE *sink_ = nullptr;
    /** Sink opened by openSink(), owned (closed on replace). */
    std::FILE *owned_ = nullptr;
    LogRateLimit limit_;
    std::map<std::string, Bucket> buckets_;
    uint64_t written_ = 0;
    uint64_t dropped_ = 0;
};

/** The process-global logger. */
Logger &logger();

/**
 * JSON-escape @p text into @p out (quotes not included): the
 * minimal escaper the logger and the flight recorder share so obs
 * stays below pm_json.
 */
void appendJsonEscaped(std::string &out, std::string_view text);

} // namespace parchmint::obs

#define PM_LOG_AT(level_, site, msg, ...)                             \
    do {                                                              \
        if (::parchmint::obs::logger().enabledFor(level_)) {          \
            ::parchmint::obs::logger().log(                           \
                (level_), (site), (msg), ##__VA_ARGS__);              \
        }                                                             \
    } while (0)

#define PM_LOG_DEBUG(site, msg, ...)                                  \
    PM_LOG_AT(::parchmint::obs::LogLevel::Debug, site, msg,           \
              ##__VA_ARGS__)
#define PM_LOG_INFO(site, msg, ...)                                   \
    PM_LOG_AT(::parchmint::obs::LogLevel::Info, site, msg,            \
              ##__VA_ARGS__)
#define PM_LOG_WARN(site, msg, ...)                                   \
    PM_LOG_AT(::parchmint::obs::LogLevel::Warn, site, msg,            \
              ##__VA_ARGS__)
#define PM_LOG_ERROR(site, msg, ...)                                  \
    PM_LOG_AT(::parchmint::obs::LogLevel::Error, site, msg,           \
              ##__VA_ARGS__)

#endif // PARCHMINT_OBS_LOG_HH
