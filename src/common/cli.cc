#include "common/cli.hh"

#include <cstdio>
#include <cstdlib>

namespace parchmint::cli
{

[[noreturn]] void
usageError(const std::string &program, const std::string &message,
           const std::string &hint)
{
    std::fprintf(stderr, "%s: %s\n", program.c_str(),
                 message.c_str());
    if (!hint.empty())
        std::fprintf(stderr, "%s\n", hint.c_str());
    std::exit(kUsageExit);
}

bool
matchValueFlag(int argc, char **argv, int &i, const char *name,
               std::string &value)
{
    std::string_view arg = argv[i];
    std::string_view flag = name;
    if (arg == flag) {
        if (i + 1 >= argc) {
            usageError(argv[0], std::string(flag) +
                                    " requires a value");
        }
        value = argv[++i];
        return true;
    }
    if (arg.size() > flag.size() + 1 &&
        arg.substr(0, flag.size()) == flag &&
        arg[flag.size()] == '=') {
        value = std::string(arg.substr(flag.size() + 1));
        return true;
    }
    return false;
}

uint64_t
parseUint64(std::string_view text, const char *what,
            const char *program)
{
    if (text.empty())
        usageError(program, std::string(what) + ": empty value");
    uint64_t result = 0;
    for (char c : text) {
        if (c < '0' || c > '9') {
            usageError(program,
                       std::string(what) + ": expected a " +
                           "nonnegative integer, got \"" +
                           std::string(text) + "\"");
        }
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (result > (UINT64_MAX - digit) / 10) {
            usageError(program, std::string(what) +
                                    ": value out of range: \"" +
                                    std::string(text) + "\"");
        }
        result = result * 10 + digit;
    }
    return result;
}

uint64_t
parseSeed(std::string_view text, const char *program)
{
    return parseUint64(text, "--seed", program);
}

} // namespace parchmint::cli
