/**
 * @file
 * Shared command-line parsing helpers for the example binaries.
 *
 * Every example CLI grew its own strtoull-based `--seed` handling
 * and its own idea of what an unknown flag does; this header owns
 * that protocol once. The conventions it enforces:
 *
 *   - numeric values are parsed strictly — "1x", "", and negative
 *     seeds are usage errors, not silently-truncated numbers;
 *   - usage errors (unknown flag, malformed value) print to stderr
 *     and exit with status 2, distinct from runtime failures
 *     (UserError -> 1), so scripts can tell "you called me wrong"
 *     from "the input was bad".
 */

#ifndef PARCHMINT_COMMON_CLI_HH
#define PARCHMINT_COMMON_CLI_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace parchmint::cli
{

/** Exit status for command-line usage errors. */
constexpr int kUsageExit = 2;

/**
 * Print "<program>: <message>" to stderr and exit(2). @p hint,
 * when nonempty, is printed on a second line (typically "try
 * --help" or a usage string).
 */
[[noreturn]] void usageError(const std::string &program,
                             const std::string &message,
                             const std::string &hint = "");

/**
 * Match `--name <value>` / `--name=<value>` at argv[i]. On a space
 * spelling, consumes the value argument and advances @p i. A flag
 * given without a value is a usage error.
 * @return true when argv[i] was this flag.
 */
bool matchValueFlag(int argc, char **argv, int &i,
                    const char *name, std::string &value);

/**
 * Parse a nonnegative decimal integer CLI value strictly.
 * @param what Flag name for the error message, e.g. "--seed".
 * Usage-errors (exit 2) on empty/garbage/overflowing text.
 */
uint64_t parseUint64(std::string_view text, const char *what,
                     const char *program);

/** parseUint64 specialized for the ubiquitous `--seed` flag. */
uint64_t parseSeed(std::string_view text, const char *program);

} // namespace parchmint::cli

#endif // PARCHMINT_COMMON_CLI_HH
