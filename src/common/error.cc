#include "common/error.hh"

namespace parchmint
{

Error::Error(const std::string &message)
    : std::runtime_error(message)
{
}

UserError::UserError(const std::string &message)
    : Error(message)
{
}

InternalError::InternalError(const std::string &message)
    : Error(message)
{
}

void
fatal(const std::string &message)
{
    throw UserError(message);
}

void
panic(const std::string &message)
{
    throw InternalError("internal error: " + message);
}

} // namespace parchmint
