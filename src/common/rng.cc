#include "common/rng.hh"

#include "common/error.hh"

namespace parchmint
{

namespace
{

/** splitmix64 step, used only for seeding. */
uint64_t
splitMix(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotateLeft(uint64_t value, int shift)
{
    return (value << shift) | (value >> (64 - shift));
}

} // namespace

uint64_t
deriveSeed(uint64_t base, std::string_view name)
{
    // FNV-1a over the name bytes, seeded with the base, then one
    // splitmix64 finalizer so similar names land far apart.
    uint64_t hash = base ^ 0xcbf29ce484222325ULL;
    for (char c : name) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return splitMix(hash);
}

Rng::Rng(uint64_t seed)
{
    uint64_t mix = seed;
    for (auto &word : state_)
        word = splitMix(mix);
    // xoshiro must not start in the all-zero state.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
        state_[3] == 0) {
        state_[0] = 1;
    }
}

uint64_t
Rng::next()
{
    uint64_t result = rotateLeft(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotateLeft(state_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBelow called with bound 0");
    // Rejection sampling over the largest multiple of bound.
    uint64_t threshold = (0 - bound) % bound;
    while (true) {
        uint64_t raw = next();
        if (raw >= threshold)
            return raw % bound;
    }
}

int64_t
Rng::nextInRange(int64_t low, int64_t high)
{
    if (low > high)
        panic("Rng::nextInRange called with low > high");
    uint64_t width = static_cast<uint64_t>(high - low) + 1;
    if (width == 0) {
        // Full 64-bit range requested.
        return static_cast<int64_t>(next());
    }
    return low + static_cast<int64_t>(nextBelow(width));
}

double
Rng::nextDouble()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double probability)
{
    return nextDouble() < probability;
}

} // namespace parchmint
