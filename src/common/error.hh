/**
 * @file
 * Error types shared by every parchmint library.
 *
 * Following the gem5 fatal()/panic() convention, user-triggerable
 * conditions (malformed input files, invalid netlists, impossible
 * requests) raise UserError, while conditions that indicate a bug in
 * this library itself raise InternalError. Tests assert on the
 * distinction, and command line tools map UserError to a clean exit
 * with a message and InternalError to an abort-style report.
 */

#ifndef PARCHMINT_COMMON_ERROR_HH
#define PARCHMINT_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

namespace parchmint
{

/**
 * Base class of all exceptions thrown by parchmint libraries.
 */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &message);
};

/**
 * The user handed us something invalid: a malformed JSON document, a
 * netlist that violates the ParchMint rules, a MINT program with a
 * syntax error, or an impossible request (e.g. routing on a device
 * with no flow layer). Equivalent of gem5's fatal().
 */
class UserError : public Error
{
  public:
    explicit UserError(const std::string &message);
};

/**
 * The library itself is broken: an invariant that user input cannot
 * violate failed to hold. Equivalent of gem5's panic().
 */
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string &message);
};

/**
 * Throw UserError with a printf-free formatted message.
 *
 * @param message The complete, already-formatted message.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Throw InternalError; call sites mark "cannot happen" states.
 *
 * @param message The complete, already-formatted message.
 */
[[noreturn]] void panic(const std::string &message);

} // namespace parchmint

#endif // PARCHMINT_COMMON_ERROR_HH
