/**
 * @file
 * Deterministic random number generator.
 *
 * Every stochastic algorithm in parchmint (synthetic benchmark
 * generation, random placement, simulated annealing) takes an
 * explicit Rng so that benchmark results and tests are reproducible
 * bit-for-bit across runs and platforms. The generator is
 * xoshiro256** seeded via splitmix64, implemented here so results do
 * not depend on the standard library's unspecified distributions.
 */

#ifndef PARCHMINT_COMMON_RNG_HH
#define PARCHMINT_COMMON_RNG_HH

#include <cstdint>
#include <string_view>

namespace parchmint
{

/**
 * Derive an independent stream seed from a base seed and a name,
 * e.g. the suite-level seed and a benchmark's netlist name. The
 * name bytes are folded FNV-1a style into the base and finalized
 * with a splitmix64 step, so every (seed, name) pair gets its own
 * well-mixed stream. This is what makes parallel suite sweeps
 * reproducible and order-independent: each job's RNG depends only
 * on the pinned suite seed and its own name, never on how many
 * jobs ran before it.
 */
uint64_t deriveSeed(uint64_t base, std::string_view name);

/**
 * Deterministic, platform-independent pseudo random number source.
 */
class Rng
{
  public:
    /**
     * Seed the generator. The same seed always produces the same
     * sequence.
     */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /**
     * Uniform integer in [0, bound), bias-free via rejection.
     * bound must be nonzero.
     */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [low, high] inclusive; requires low <= high. */
    int64_t nextInRange(int64_t low, int64_t high);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with the given probability of true. */
    bool nextBool(double probability = 0.5);

  private:
    uint64_t state_[4];
};

} // namespace parchmint

#endif // PARCHMINT_COMMON_RNG_HH
