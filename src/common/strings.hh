/**
 * @file
 * Small string helpers used across the parchmint libraries.
 */

#ifndef PARCHMINT_COMMON_STRINGS_HH
#define PARCHMINT_COMMON_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace parchmint
{

/**
 * Split a string on a single-character delimiter. Empty fields are
 * preserved, so "a,,b" splits into {"a", "", "b"} and "" splits into
 * {""}.
 *
 * @param text The string to split.
 * @param delimiter The separator character.
 * @return The fields, in order.
 */
std::vector<std::string> split(std::string_view text, char delimiter);

/**
 * Join strings with a separator; the inverse of split().
 */
std::string join(const std::vector<std::string> &parts,
                 std::string_view separator);

/** Strip ASCII whitespace from both ends of a string. */
std::string trim(std::string_view text);

/** Lowercase an ASCII string. */
std::string toLower(std::string_view text);

/** Uppercase an ASCII string. */
std::string toUpper(std::string_view text);

/** True when text begins with the given prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True when text ends with the given suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/**
 * The final path component: everything after the last '/' (or '\\'
 * on Windows-style paths). "build/examples/pnr_flow" and
 * "./pnr_flow" both reduce to "pnr_flow", so tool names recorded in
 * run reports compare equal across build directories.
 */
std::string pathBasename(std::string_view path);

/**
 * Render a double the way JSON expects: integral values get no
 * trailing ".0" stripped surprises and non-integral values keep
 * round-trip precision.
 */
std::string formatDouble(double value);

/**
 * True when the string is a valid identifier for netlist IDs:
 * non-empty, characters drawn from [A-Za-z0-9_.-], not starting
 * with '-'.
 */
bool isValidId(std::string_view text);

} // namespace parchmint

#endif // PARCHMINT_COMMON_STRINGS_HH
