#include "common/strings.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace parchmint
{

std::vector<std::string>
split(std::string_view text, char delimiter)
{
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(delimiter, start);
        if (pos == std::string_view::npos) {
            fields.emplace_back(text.substr(start));
            return fields;
        }
        fields.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
join(const std::vector<std::string> &parts, std::string_view separator)
{
    std::string joined;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            joined.append(separator);
        joined.append(parts[i]);
    }
    return joined;
}

std::string
pathBasename(std::string_view path)
{
    size_t slash = path.find_last_of("/\\");
    if (slash == std::string_view::npos)
        return std::string(path);
    return std::string(path.substr(slash + 1));
}

std::string
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return std::string(text.substr(begin, end - begin));
}

std::string
toLower(std::string_view text)
{
    std::string lowered(text);
    for (char &c : lowered)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return lowered;
}

std::string
toUpper(std::string_view text)
{
    std::string raised(text);
    for (char &c : raised)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return raised;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string
formatDouble(double value)
{
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 1e15) {
        // Integral value: print without exponent or fraction.
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.0f", value);
        return buffer;
    }
    // Shortest representation that round-trips.
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    double parsed = 0.0;
    std::sscanf(buffer, "%lf", &parsed);
    for (int precision = 1; precision < 17; ++precision) {
        char candidate[64];
        std::snprintf(candidate, sizeof(candidate), "%.*g", precision,
                      value);
        std::sscanf(candidate, "%lf", &parsed);
        if (parsed == value)
            return candidate;
    }
    return buffer;
}

bool
isValidId(std::string_view text)
{
    if (text.empty() || text.front() == '-')
        return false;
    for (char c : text) {
        bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                  c == '_' || c == '.' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace parchmint
