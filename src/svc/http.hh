/**
 * @file
 * HTTP/1.1 message types and incremental parsers.
 *
 * The service daemon carries netlists over HTTP because that is
 * what every load balancer, benchmark harness and curl invocation
 * already speaks — but it depends on no HTTP library: this file is
 * a small, strict subset of RFC 7230 sufficient for parchmintd and
 * its clients. Requests and responses are plain structs; the
 * parsers are *incremental* (feed bytes as they arrive from a
 * socket, in as many fragments as the kernel hands over) with hard
 * size limits so an adversarial or broken peer cannot balloon
 * memory. Unsupported constructs are rejected with the HTTP status
 * that tells the client why (431 oversized headers, 413 oversized
 * body, 501 chunked transfer, 505 unknown version) rather than by
 * dropping the connection.
 *
 * This layer is socket-free and deterministic: serialization of the
 * same message always yields the same bytes (no Date headers, no
 * clock reads), which is what lets the service promise byte-
 * identical responses for identical requests.
 */

#ifndef PARCHMINT_SVC_HTTP_HH
#define PARCHMINT_SVC_HTTP_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace parchmint::svc
{

/** One parsed HTTP request. Header names are lowercased. */
struct HttpRequest
{
    std::string method;
    /** Full request target, query string included. */
    std::string target;
    /** "HTTP/1.0" or "HTTP/1.1". */
    std::string version = "HTTP/1.1";
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** @return The header's value, or nullptr when absent. */
    const std::string *findHeader(std::string_view name) const;

    /** The target without its query string. */
    std::string path() const;

    /**
     * The value of a query parameter ("" when absent). Splitting
     * only; no percent-decoding — parchmintd parameters are plain
     * tokens (seeds, names).
     */
    std::string queryParam(std::string_view key) const;

    /** Whether the connection should persist after the response:
     * HTTP/1.1 unless "Connection: close", HTTP/1.0 only with
     * "Connection: keep-alive". */
    bool keepAlive() const;
};

/** One HTTP response. Content-Length is added at serialization. */
struct HttpResponse
{
    int status = 200;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    void setHeader(std::string name, std::string value);
    const std::string *findHeader(std::string_view name) const;
};

/** Reason phrase for a status code ("Unknown" when unlisted). */
const char *statusText(int status);

/** Serialize a request for the wire (adds Content-Length). */
std::string serializeRequest(const HttpRequest &request);

/** Serialize a response for the wire (adds Content-Length). */
std::string serializeResponse(const HttpResponse &response);

/** Incremental parser limits; defaults suit netlist payloads. */
struct ParserLimits
{
    /** Request line + headers budget, bytes. */
    size_t maxHeaderBytes = 64 * 1024;
    /** Body budget, bytes; the largest suite netlists serialize
     * well under 1 MiB, so 8 MiB leaves headroom for big
     * synthetic instances without letting a peer buffer
     * arbitrarily much. */
    size_t maxBodyBytes = 8 * 1024 * 1024;
};

/**
 * Incremental HTTP/1.1 request parser.
 *
 * Feed raw bytes in arbitrary fragments; the parser buffers until
 * the message is Complete or rejected (Error). Bytes beyond the
 * first complete message (pipelined requests) are kept and become
 * the start of the next message after reset(). On Error,
 * errorStatus()/errorReason() describe the HTTP rejection to send
 * before closing.
 */
class RequestParser
{
  public:
    enum class State
    {
        /** Waiting for the end of the header block. */
        Headers,
        /** Headers parsed; waiting for Content-Length body bytes. */
        Body,
        /** One full request is available via request(). */
        Complete,
        /** The message was rejected; see errorStatus(). */
        Error,
    };

    explicit RequestParser(ParserLimits limits = {});

    /** Consume a fragment of input. No-op in Complete/Error. */
    void feed(std::string_view data);

    State state() const { return state_; }

    /** The parsed request; valid only in State::Complete. */
    const HttpRequest &request() const { return request_; }

    /** HTTP status for the rejection; valid only in Error. */
    int errorStatus() const { return errorStatus_; }
    const std::string &errorReason() const { return errorReason_; }

    /**
     * Discard the completed request and start parsing the next one
     * from any already-buffered (pipelined) bytes. Valid only in
     * State::Complete.
     */
    void reset();

  private:
    void advance();
    void fail(int status, std::string reason);
    bool parseHeaderBlock(std::string_view block);

    ParserLimits limits_;
    State state_ = State::Headers;
    std::string buffer_;
    /** End of the header block within buffer_ (past CRLFCRLF). */
    size_t bodyStart_ = 0;
    size_t contentLength_ = 0;
    HttpRequest request_;
    int errorStatus_ = 0;
    std::string errorReason_;
};

/**
 * Incremental HTTP response parser, the client-side twin of
 * RequestParser. Responses must carry Content-Length (parchmintd
 * always does); chunked bodies are rejected.
 */
class ResponseParser
{
  public:
    enum class State
    {
        Headers,
        Body,
        Complete,
        Error,
    };

    explicit ResponseParser(size_t max_body_bytes = 64 * 1024 * 1024);

    void feed(std::string_view data);

    State state() const { return state_; }
    const HttpResponse &response() const { return response_; }
    const std::string &errorReason() const { return errorReason_; }

    /** Start parsing the next response from buffered bytes. */
    void reset();

  private:
    void advance();
    void fail(std::string reason);

    size_t maxBodyBytes_;
    State state_ = State::Headers;
    std::string buffer_;
    size_t bodyStart_ = 0;
    size_t contentLength_ = 0;
    HttpResponse response_;
    std::string errorReason_;
};

} // namespace parchmint::svc

#endif // PARCHMINT_SVC_HTTP_HH
