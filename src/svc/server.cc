#include "svc/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>

#include "common/error.hh"
#include "exec/thread_pool.hh"
#include "json/write.hh"
#include "svc/reactor.hh"

namespace parchmint::svc
{

namespace
{

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

struct HttpServer::Connection
{
    int fd;
    RequestParser parser;
    /** Last time bytes moved; the poller expires idle ones. */
    std::chrono::steady_clock::time_point lastActive;

    Connection(int fd, ParserLimits limits)
        : fd(fd),
          parser(limits),
          lastActive(std::chrono::steady_clock::now())
    {
    }
};

HttpServer::HttpServer(HttpHandler &handler,
                       ServerOptions options)
    : handler_(handler),
      options_(std::move(options))
{
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start()
{
    if (started_.load(std::memory_order_acquire))
        return;

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal(std::string("cannot create socket: ") +
              std::strerror(errno));
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bindAddress.c_str(),
                    &address.sin_addr) != 1) {
        ::close(fd);
        fatal("invalid bind address \"" + options_.bindAddress +
              "\"");
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&address),
               sizeof(address)) != 0) {
        std::string reason = std::strerror(errno);
        ::close(fd);
        fatal("cannot bind " + options_.bindAddress + ":" +
              std::to_string(options_.port) + ": " + reason);
    }
    if (::listen(fd, 128) != 0) {
        std::string reason = std::strerror(errno);
        ::close(fd);
        fatal("cannot listen: " + reason);
    }

    sockaddr_in bound{};
    socklen_t length = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &length) != 0) {
        std::string reason = std::strerror(errno);
        ::close(fd);
        fatal("cannot read bound address: " + reason);
    }
    port_ = ntohs(bound.sin_port);
    setNonBlocking(fd);

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        std::string reason = std::strerror(errno);
        ::close(fd);
        fatal("cannot create wake pipe: " + reason);
    }
    setNonBlocking(pipe_fds[0]);
    setNonBlocking(pipe_fds[1]);
    wakeRead_ = pipe_fds[0];
    wakeWrite_ = pipe_fds[1];

    listenFd_ = fd;
    stopping_.store(false, std::memory_order_release);
    size_t threads =
        options_.threads == 0
            ? exec::ThreadPool::hardwareThreads()
            : options_.threads;
    pool_ = std::make_unique<exec::ThreadPool>(threads);
    eventThread_ = std::thread([this] { eventLoop(); });
    started_.store(true, std::memory_order_release);
}

void
HttpServer::stop()
{
    if (!started_.exchange(false, std::memory_order_acq_rel))
        return;
    stopping_.store(true, std::memory_order_release);

    // The event thread notices stopping_ on wakeup, then closes
    // the listener and its idle connections as it exits.
    wakePoller();
    if (eventThread_.joinable())
        eventThread_.join();

    // Half-close live connections: a worker pumping a socket sees
    // EOF immediately, but one mid-response can still flush its
    // write before closing — that is the "drain" in
    // drain-then-shutdown.
    {
        std::lock_guard<std::mutex> lock(liveMutex_);
        for (int fd : liveFds_)
            ::shutdown(fd, SHUT_RD);
    }
    // The pool drains its queue (dispatched connections serve
    // their buffered requests, see EOF, and close) then joins.
    pool_->shutdown();
    pool_.reset();

    // Connections returned by workers after the event loop left
    // have no poller to go back to.
    {
        std::lock_guard<std::mutex> lock(returnedMutex_);
        for (const std::shared_ptr<Connection> &connection :
             returned_) {
            closeConnection(*connection);
        }
        returned_.clear();
    }

    ::close(wakeRead_);
    ::close(wakeWrite_);
    wakeRead_ = -1;
    wakeWrite_ = -1;
}

void
HttpServer::wakePoller()
{
    char byte = 1;
    // Non-blocking: a full pipe already guarantees a wakeup.
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &byte, 1);
}

void
HttpServer::closeConnection(const Connection &connection)
{
    {
        std::lock_guard<std::mutex> lock(liveMutex_);
        liveFds_.erase(connection.fd);
    }
    ::close(connection.fd);
}

void
HttpServer::returnToPoller(std::shared_ptr<Connection> connection)
{
    if (stopping_.load(std::memory_order_acquire)) {
        closeConnection(*connection);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(returnedMutex_);
        returned_.push_back(std::move(connection));
    }
    wakePoller();
}

void
HttpServer::eventLoop()
{
    // The listener and wake pipe are watched for the loop's whole
    // life; connection fds come and go. Edge-triggered readiness
    // is safe because every consumer drains to EAGAIN: the accept
    // loop accepts until empty, the wake handler drains the pipe,
    // and workers pump sockets dry before returning them — and a
    // re-add after a dispatch reports any already-pending bytes as
    // a fresh edge.
    Reactor reactor;
    reactor.add(listenFd_);
    reactor.add(wakeRead_);

    // Idle connections, owned by this loop between dispatches.
    std::map<int, std::shared_ptr<Connection>> idle;
    std::vector<int> ready;

    while (!stopping_.load(std::memory_order_acquire)) {
        {
            std::lock_guard<std::mutex> lock(returnedMutex_);
            for (std::shared_ptr<Connection> &connection :
                 returned_) {
                int fd = connection->fd;
                reactor.add(fd);
                idle.emplace(fd, std::move(connection));
            }
            returned_.clear();
        }

        int timeout =
            options_.idleTimeout.count() > 0
                ? static_cast<int>(options_.idleTimeout.count())
                : -1;
        int woke = reactor.wait(timeout, ready);
        if (stopping_.load(std::memory_order_acquire))
            break;
        if (woke < 0) {
            if (errno == EINTR)
                continue;
            break;
        }

        for (int fd : ready) {
            if (fd == wakeRead_) {
                char drain[64];
                while (::read(wakeRead_, drain, sizeof(drain)) >
                       0) {
                }
                continue;
            }
            if (fd == listenFd_) {
                while (true) {
                    int client =
                        ::accept(listenFd_, nullptr, nullptr);
                    if (client < 0)
                        break;
                    connections_.fetch_add(
                        1, std::memory_order_relaxed);
                    setNonBlocking(client);
                    {
                        std::lock_guard<std::mutex> lock(
                            liveMutex_);
                        liveFds_.insert(client);
                    }
                    reactor.add(client);
                    idle.emplace(client,
                                 std::make_shared<Connection>(
                                     client, options_.limits));
                }
                continue;
            }
            auto it = idle.find(fd);
            if (it == idle.end())
                continue;
            std::shared_ptr<Connection> connection =
                std::move(it->second);
            idle.erase(it);
            // Unwatch before dispatch: the worker owns the fd
            // until returnToPoller() re-adds it, so the reactor
            // never reports a socket a worker is mid-pump on.
            reactor.remove(fd);
            connection->lastActive =
                std::chrono::steady_clock::now();
            try {
                pool_->post([this, connection] {
                    serveConnection(connection);
                });
            } catch (const Error &) {
                // Pool refused (shutdown raced the wait).
                closeConnection(*connection);
            }
        }

        if (options_.idleTimeout.count() > 0) {
            auto now = std::chrono::steady_clock::now();
            for (auto it = idle.begin(); it != idle.end();) {
                if (now - it->second->lastActive >=
                    options_.idleTimeout) {
                    reactor.remove(it->first);
                    closeConnection(*it->second);
                    it = idle.erase(it);
                } else {
                    ++it;
                }
            }
        }
    }

    for (const auto &[fd, connection] : idle)
        closeConnection(*connection);
    ::close(listenFd_);
    listenFd_ = -1;
}

bool
HttpServer::sendAll(const Connection &connection,
                    std::string_view data)
{
    size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n =
            ::send(connection.fd, data.data() + sent,
                   data.size() - sent, MSG_NOSIGNAL);
        if (n >= 0) {
            sent += static_cast<size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            return false;
        // Kernel buffer full: wait (bounded) for drainage.
        pollfd out{connection.fd, POLLOUT, 0};
        int timeout =
            options_.idleTimeout.count() > 0
                ? static_cast<int>(options_.idleTimeout.count())
                : -1;
        int ready = ::poll(&out, 1, timeout);
        if (ready < 0 && errno == EINTR)
            continue; // e.g. SIGPROF during a profile capture
        if (ready <= 0)
            return false;
    }
    return true;
}

void
HttpServer::serveConnection(std::shared_ptr<Connection> connection)
{
    RequestParser &parser = connection->parser;
    char buffer[16 * 1024];

    while (true) {
        // Pump whatever the socket has; the parser accepts any
        // fragmentation.
        while (parser.state() == RequestParser::State::Headers ||
               parser.state() == RequestParser::State::Body) {
            ssize_t n = ::recv(connection->fd, buffer,
                               sizeof(buffer), 0);
            if (n > 0) {
                parser.feed(std::string_view(
                    buffer, static_cast<size_t>(n)));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 &&
                (errno == EAGAIN || errno == EWOULDBLOCK)) {
                // Socket ran dry mid-message (or between
                // messages): park with the poller until more
                // bytes arrive.
                connection->lastActive =
                    std::chrono::steady_clock::now();
                returnToPoller(std::move(connection));
                return;
            }
            // EOF or a hard error; nothing more to serve.
            closeConnection(*connection);
            return;
        }

        if (parser.state() == RequestParser::State::Error) {
            HttpResponse response;
            response.status = parser.errorStatus();
            response.setHeader("Content-Type",
                               "application/json");
            response.setHeader("Connection", "close");
            response.body =
                "{\"error\":\"" +
                json::escapeString(parser.errorReason()) + "\"}";
            sendAll(*connection, serializeResponse(response));
            closeConnection(*connection);
            return;
        }

        const HttpRequest &request = parser.request();
        HttpResponse response = handler_.handle(request);
        bool keep_alive =
            request.keepAlive() &&
            !stopping_.load(std::memory_order_acquire);
        response.setHeader("Connection",
                           keep_alive ? "keep-alive" : "close");
        if (!sendAll(*connection,
                     serializeResponse(response)) ||
            !keep_alive) {
            closeConnection(*connection);
            return;
        }
        // reset() keeps pipelined bytes: the loop serves any
        // already-complete request without touching the socket.
        parser.reset();
    }
}

} // namespace parchmint::svc
