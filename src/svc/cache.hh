/**
 * @file
 * Content-addressed result caching for the netlist service.
 *
 * The daemon's whole speedup comes from here: ParchMint is an
 * interchange format, so the same netlist document arrives over and
 * over from different tools, and parse + validate + place work is
 * identical every time. Requests are addressed by *content*, not by
 * anything session-like: the cache key is a 64-bit FNV-1a hash of
 * the canonicalized document (finalized with a splitmix64 step —
 * the same mixing as common/rng.hh deriveSeed, and in fact
 * implemented by it), so two clients posting the same netlist with
 * different whitespace or non-ASCII spellings hit the same entry.
 *
 * Two cache levels cooperate in the service:
 *
 *   - a *document* cache keyed by the hash of the raw body bytes,
 *     mapping to the parsed JSON and its canonical key — a raw hit
 *     skips JSON parsing entirely;
 *   - a *result* cache keyed by endpoint + canonical key (+ seed
 *     for the stochastic endpoints), mapping to the exact response
 *     body previously served.
 *
 * Both are instances of ShardedLruCache: N independently locked
 * shards (a key's shard is fixed by its hash, so one hot mutex
 * never serializes the whole pool), each an LRU list with a byte
 * budget. Values are shared_ptr-to-const, so an entry can be
 * evicted while another worker is still reading it.
 */

#ifndef PARCHMINT_SVC_CACHE_HH
#define PARCHMINT_SVC_CACHE_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "json/value.hh"

namespace parchmint::svc
{

/**
 * 64-bit content hash: FNV-1a over the bytes, splitmix64
 * finalized. Delegates to common/rng.hh deriveSeed so the service
 * and the execution engine share one mixing function (and one set
 * of golden-value tests).
 */
uint64_t contentHash(std::string_view bytes);

/** The hash as 16 lowercase hex digits, for keys and logs. */
std::string hashHex(uint64_t hash);

/**
 * Canonical text of a JSON document: compact (no whitespace),
 * ASCII-only (non-ASCII escaped as \\uXXXX, astral code points as
 * surrogate pairs), member order preserved. Two documents differing
 * only in formatting canonicalize to identical bytes, which is
 * what makes content hashes stable across clients.
 */
std::string canonicalJsonText(const json::Value &document);

/** Point-in-time counters of one cache. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    /** Entries rejected because they alone exceed a shard budget. */
    uint64_t oversized = 0;
    size_t entries = 0;
    size_t bytes = 0;
};

/**
 * A sharded LRU cache with a byte budget. Thread-safe; see the
 * file comment. @tparam V the cached value type; entries carry an
 * explicit byte cost supplied at insert time.
 */
template <typename V>
class ShardedLruCache
{
  public:
    /**
     * @param shards Number of independently locked shards
     *        (clamped to >= 1).
     * @param byte_budget Total byte budget, split evenly across
     *        shards; 0 disables caching (every find misses).
     */
    ShardedLruCache(size_t shards, size_t byte_budget)
        : shards_(shards == 0 ? 1 : shards),
          shardBudget_((byte_budget + shards_ - 1) / shards_),
          enabled_(byte_budget > 0),
          shardList_(shards_)
    {
    }

    /** Look up a key, promoting a hit to most-recently-used. */
    std::shared_ptr<const V>
    find(const std::string &key)
    {
        if (!enabled_) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.index.find(key);
        if (it == shard.index.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        // Promote: splice the entry to the front of the LRU list.
        shard.entries.splice(shard.entries.begin(), shard.entries,
                             it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second->value;
    }

    /**
     * Insert (or overwrite) an entry costing @p bytes. An entry
     * whose cost alone exceeds the shard budget is not cached.
     */
    void
    insert(const std::string &key, std::shared_ptr<const V> value,
           size_t bytes)
    {
        if (!enabled_)
            return;
        if (bytes > shardBudget_) {
            oversized_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            shard.bytes -= it->second->bytes;
            shard.entries.erase(it->second);
            shard.index.erase(it);
        }
        shard.entries.push_front(
            Entry{key, std::move(value), bytes});
        shard.index[key] = shard.entries.begin();
        shard.bytes += bytes;
        insertions_.fetch_add(1, std::memory_order_relaxed);
        while (shard.bytes > shardBudget_) {
            const Entry &victim = shard.entries.back();
            shard.bytes -= victim.bytes;
            shard.index.erase(victim.key);
            shard.entries.pop_back();
            evictions_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    /** Snapshot the counters and sizes. */
    CacheStats
    stats() const
    {
        CacheStats out;
        out.hits = hits_.load(std::memory_order_relaxed);
        out.misses = misses_.load(std::memory_order_relaxed);
        out.insertions =
            insertions_.load(std::memory_order_relaxed);
        out.evictions = evictions_.load(std::memory_order_relaxed);
        out.oversized = oversized_.load(std::memory_order_relaxed);
        for (const Shard &shard : shardList_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            out.entries += shard.entries.size();
            out.bytes += shard.bytes;
        }
        return out;
    }

    size_t shardCount() const { return shards_; }
    size_t shardBudget() const { return shardBudget_; }

  private:
    struct Entry
    {
        std::string key;
        std::shared_ptr<const V> value;
        size_t bytes = 0;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        /** Most-recently-used first. */
        std::list<Entry> entries;
        std::unordered_map<std::string,
                           typename std::list<Entry>::iterator>
            index;
        size_t bytes = 0;
    };

    Shard &
    shardFor(const std::string &key)
    {
        return shardList_[contentHash(key) % shards_];
    }

    size_t shards_;
    size_t shardBudget_;
    bool enabled_;
    std::vector<Shard> shardList_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> insertions_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> oversized_{0};
};

} // namespace parchmint::svc

#endif // PARCHMINT_SVC_CACHE_HH
