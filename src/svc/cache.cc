#include "svc/cache.hh"

#include <cstdio>

#include "common/rng.hh"
#include "json/write.hh"

namespace parchmint::svc
{

namespace
{

/**
 * Base for content hashes. Any fixed value works; a distinctive
 * one keeps service cache keys from colliding with RNG seed
 * streams derived from the same mixing function.
 */
constexpr uint64_t kContentHashBase = 0x70617263686d696eULL;

} // namespace

uint64_t
contentHash(std::string_view bytes)
{
    return deriveSeed(kContentHashBase, bytes);
}

std::string
hashHex(uint64_t hash)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(hash));
    return std::string(buffer);
}

std::string
canonicalJsonText(const json::Value &document)
{
    json::WriteOptions options;
    options.pretty = false;
    options.asciiOnly = true;
    return json::write(document, options);
}

} // namespace parchmint::svc
