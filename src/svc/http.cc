#include "svc/http.hh"

#include <cctype>
#include <cstdlib>
#include <limits>

#include "common/strings.hh"

namespace parchmint::svc
{

namespace
{

/** Case-insensitive ASCII equality for header names. */
bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

const std::string *
findIn(const std::vector<std::pair<std::string, std::string>> &headers,
       std::string_view name)
{
    for (const auto &[key, value] : headers) {
        if (iequals(key, name))
            return &value;
    }
    return nullptr;
}

/**
 * Parse "name: value" lines out of a header block (the bytes
 * between the start line and the blank line). @return false on a
 * malformed line.
 */
bool
parseHeaderLines(std::string_view block,
                 std::vector<std::pair<std::string, std::string>> &out)
{
    size_t pos = 0;
    while (pos < block.size()) {
        size_t eol = block.find("\r\n", pos);
        if (eol == std::string_view::npos)
            eol = block.size();
        std::string_view line = block.substr(pos, eol - pos);
        pos = eol + (eol < block.size() ? 2 : 0);
        if (line.empty())
            continue;
        size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0)
            return false;
        std::string_view raw_name = line.substr(0, colon);
        // Whitespace anywhere in the field name is invalid per RFC
        // 7230 §3.2.4 — trimming "Content-Length :" into a valid
        // name (as this parser once did) lets a front end and back
        // end disagree about which header was sent. This also
        // rejects obs-fold continuation lines, which we do not
        // support.
        if (raw_name.find_first_of(" \t") != std::string_view::npos)
            return false;
        out.emplace_back(toLower(raw_name),
                         trim(line.substr(colon + 1)));
    }
    return true;
}

/**
 * Parse a nonnegative decimal Content-Length. @return false for
 * anything but a plain digit string that fits in size_t.
 */
bool
parseContentLength(std::string_view text, size_t &out)
{
    if (text.empty())
        return false;
    // "007" and "+5" are tolerated by some stacks and rejected by
    // others — exactly the disagreement request smuggling exploits.
    // Only the canonical spelling is accepted: decimal digits, no
    // sign, no leading zero (except "0" itself), and a value that
    // fits in int64 (19+ digit lengths used to be waved through by
    // a length heuristic that silently wrapped on 16-18 digits).
    if (text.size() > 1 && text[0] == '0')
        return false;
    constexpr uint64_t kMax =
        static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
    uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (value > (kMax - digit) / 10)
            return false;
        value = value * 10 + digit;
    }
    out = static_cast<size_t>(value);
    return true;
}

/** Split a start line into its three space-separated parts. */
bool
splitStartLine(std::string_view line, std::string_view &a,
               std::string_view &b, std::string_view &c)
{
    size_t first = line.find(' ');
    if (first == std::string_view::npos)
        return false;
    size_t second = line.find(' ', first + 1);
    if (second == std::string_view::npos)
        return false;
    a = line.substr(0, first);
    b = line.substr(first + 1, second - first - 1);
    c = line.substr(second + 1);
    return !a.empty() && !b.empty() && !c.empty();
}

} // namespace

// --- Messages ---------------------------------------------------------

const std::string *
HttpRequest::findHeader(std::string_view name) const
{
    return findIn(headers, name);
}

std::string
HttpRequest::path() const
{
    size_t query = target.find('?');
    return query == std::string::npos ? target
                                      : target.substr(0, query);
}

std::string
HttpRequest::queryParam(std::string_view key) const
{
    size_t query = target.find('?');
    if (query == std::string::npos)
        return "";
    for (const std::string &pair :
         split(target.substr(query + 1), '&')) {
        size_t eq = pair.find('=');
        if (eq == std::string::npos)
            continue;
        if (std::string_view(pair).substr(0, eq) == key)
            return pair.substr(eq + 1);
    }
    return "";
}

bool
HttpRequest::keepAlive() const
{
    const std::string *connection = findHeader("connection");
    if (version == "HTTP/1.0")
        return connection && iequals(*connection, "keep-alive");
    return !connection || !iequals(*connection, "close");
}

void
HttpResponse::setHeader(std::string name, std::string value)
{
    for (auto &[key, existing] : headers) {
        if (iequals(key, name)) {
            existing = std::move(value);
            return;
        }
    }
    headers.emplace_back(std::move(name), std::move(value));
}

const std::string *
HttpResponse::findHeader(std::string_view name) const
{
    return findIn(headers, name);
}

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 204: return "No Content";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 413: return "Payload Too Large";
      case 422: return "Unprocessable Entity";
      case 429: return "Too Many Requests";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      case 503: return "Service Unavailable";
      case 505: return "HTTP Version Not Supported";
      default: return "Unknown";
    }
}

std::string
serializeRequest(const HttpRequest &request)
{
    std::string out;
    out.reserve(128 + request.body.size());
    out += request.method;
    out += ' ';
    out += request.target;
    out += ' ';
    out += request.version;
    out += "\r\n";
    for (const auto &[name, value] : request.headers) {
        out += name;
        out += ": ";
        out += value;
        out += "\r\n";
    }
    out += "Content-Length: ";
    out += std::to_string(request.body.size());
    out += "\r\n\r\n";
    out += request.body;
    return out;
}

std::string
serializeResponse(const HttpResponse &response)
{
    std::string out;
    out.reserve(128 + response.body.size());
    out += "HTTP/1.1 ";
    out += std::to_string(response.status);
    out += ' ';
    out += statusText(response.status);
    out += "\r\n";
    for (const auto &[name, value] : response.headers) {
        out += name;
        out += ": ";
        out += value;
        out += "\r\n";
    }
    out += "Content-Length: ";
    out += std::to_string(response.body.size());
    out += "\r\n\r\n";
    out += response.body;
    return out;
}

// --- RequestParser ----------------------------------------------------

RequestParser::RequestParser(ParserLimits limits)
    : limits_(limits)
{
}

void
RequestParser::feed(std::string_view data)
{
    if (state_ == State::Complete || state_ == State::Error)
        return;
    buffer_.append(data);
    advance();
}

void
RequestParser::fail(int status, std::string reason)
{
    state_ = State::Error;
    errorStatus_ = status;
    errorReason_ = std::move(reason);
}

bool
RequestParser::parseHeaderBlock(std::string_view block)
{
    size_t eol = block.find("\r\n");
    std::string_view start_line =
        block.substr(0, eol == std::string_view::npos ? block.size()
                                                      : eol);
    std::string_view rest =
        eol == std::string_view::npos
            ? std::string_view{}
            : block.substr(eol + 2);

    std::string_view method, target, version;
    if (!splitStartLine(start_line, method, target, version)) {
        fail(400, "malformed request line");
        return false;
    }
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
        fail(505, "unsupported HTTP version \"" +
                      std::string(version) + "\"");
        return false;
    }
    request_ = HttpRequest{};
    request_.method = std::string(method);
    request_.target = std::string(target);
    request_.version = std::string(version);
    if (!parseHeaderLines(rest, request_.headers)) {
        fail(400, "malformed header line");
        return false;
    }
    if (request_.findHeader("transfer-encoding")) {
        fail(501, "transfer encodings are not supported");
        return false;
    }
    contentLength_ = 0;
    // Conflicting duplicate Content-Length headers are the classic
    // request-smuggling desync; findHeader() would silently pick
    // the first one.
    const std::string *length = nullptr;
    for (const auto &header : request_.headers) {
        if (header.first != "content-length")
            continue;
        if (length && *length != header.second) {
            fail(400, "conflicting Content-Length headers");
            return false;
        }
        length = &header.second;
    }
    if (length) {
        if (!parseContentLength(*length, contentLength_)) {
            fail(400, "malformed Content-Length");
            return false;
        }
    }
    if (contentLength_ > limits_.maxBodyBytes) {
        fail(413, "request body exceeds " +
                      std::to_string(limits_.maxBodyBytes) +
                      " bytes");
        return false;
    }
    return true;
}

void
RequestParser::advance()
{
    if (state_ == State::Headers) {
        size_t end = buffer_.find("\r\n\r\n");
        if (end == std::string::npos) {
            if (buffer_.size() > limits_.maxHeaderBytes)
                fail(431, "header block exceeds " +
                              std::to_string(
                                  limits_.maxHeaderBytes) +
                              " bytes");
            return;
        }
        if (end > limits_.maxHeaderBytes) {
            fail(431, "header block exceeds " +
                          std::to_string(limits_.maxHeaderBytes) +
                          " bytes");
            return;
        }
        if (!parseHeaderBlock(
                std::string_view(buffer_).substr(0, end))) {
            return;
        }
        bodyStart_ = end + 4;
        state_ = State::Body;
    }
    if (state_ == State::Body) {
        if (buffer_.size() - bodyStart_ < contentLength_)
            return;
        request_.body =
            buffer_.substr(bodyStart_, contentLength_);
        state_ = State::Complete;
    }
}

void
RequestParser::reset()
{
    if (state_ != State::Complete)
        return;
    // Keep pipelined bytes beyond the completed message.
    buffer_.erase(0, bodyStart_ + contentLength_);
    bodyStart_ = 0;
    contentLength_ = 0;
    request_ = HttpRequest{};
    state_ = State::Headers;
    advance();
}

// --- ResponseParser ---------------------------------------------------

ResponseParser::ResponseParser(size_t max_body_bytes)
    : maxBodyBytes_(max_body_bytes)
{
}

void
ResponseParser::feed(std::string_view data)
{
    if (state_ == State::Complete || state_ == State::Error)
        return;
    buffer_.append(data);
    advance();
}

void
ResponseParser::fail(std::string reason)
{
    state_ = State::Error;
    errorReason_ = std::move(reason);
}

void
ResponseParser::advance()
{
    if (state_ == State::Headers) {
        size_t end = buffer_.find("\r\n\r\n");
        if (end == std::string::npos)
            return;
        std::string_view block =
            std::string_view(buffer_).substr(0, end);
        size_t eol = block.find("\r\n");
        std::string_view start_line = block.substr(
            0, eol == std::string_view::npos ? block.size() : eol);
        std::string_view version, status, phrase;
        if (!splitStartLine(start_line, version, status, phrase) ||
            !startsWith(version, "HTTP/")) {
            fail("malformed status line");
            return;
        }
        response_ = HttpResponse{};
        response_.status =
            static_cast<int>(std::strtol(
                std::string(status).c_str(), nullptr, 10));
        if (response_.status < 100 || response_.status > 599) {
            fail("malformed status code");
            return;
        }
        std::string_view rest =
            eol == std::string_view::npos
                ? std::string_view{}
                : block.substr(eol + 2);
        if (!parseHeaderLines(rest, response_.headers)) {
            fail("malformed header line");
            return;
        }
        if (response_.findHeader("transfer-encoding")) {
            fail("transfer encodings are not supported");
            return;
        }
        contentLength_ = 0;
        if (const std::string *length =
                response_.findHeader("content-length")) {
            if (!parseContentLength(*length, contentLength_)) {
                fail("malformed Content-Length");
                return;
            }
        }
        if (contentLength_ > maxBodyBytes_) {
            fail("response body exceeds " +
                 std::to_string(maxBodyBytes_) + " bytes");
            return;
        }
        bodyStart_ = end + 4;
        state_ = State::Body;
    }
    if (state_ == State::Body) {
        if (buffer_.size() - bodyStart_ < contentLength_)
            return;
        response_.body =
            buffer_.substr(bodyStart_, contentLength_);
        state_ = State::Complete;
    }
}

void
ResponseParser::reset()
{
    if (state_ != State::Complete)
        return;
    buffer_.erase(0, bodyStart_ + contentLength_);
    bodyStart_ = 0;
    contentLength_ = 0;
    response_ = HttpResponse{};
    state_ = State::Headers;
    advance();
}

} // namespace parchmint::svc
