/**
 * @file
 * The HTTP server: an edge-triggered reactor loop (epoll on Linux,
 * poll() elsewhere — svc/reactor.hh) dispatching ready connections
 * to exec::ThreadPool workers. Serves any HttpHandler: the netlist
 * service daemon and the cluster router share this loop.
 *
 * Threading model (DESIGN.md "Netlist service"): one event thread
 * owns the listener and every idle connection in the reactor set.
 * When a connection becomes readable it is handed to the execution
 * engine's thread pool; the worker pumps the non-blocking socket
 * through the incremental parser, dispatches complete requests to
 * the service, writes the responses, and returns the connection
 * (with its parser state) to the poller as soon as the socket runs
 * dry. Workers therefore hold a thread only while a request is
 * actually arriving, computing, or flushing — never while a
 * keep-alive connection sits idle — so C connections multiplex
 * over N pool threads for any C and N, including N=1 on a
 * single-core host. Request-level overload is the admission
 * controller's job (429), not the socket layer's.
 *
 * Graceful shutdown is drain-then-join: stop() wakes the event
 * thread (which closes the listener and its idle connections),
 * half-closes (SHUT_RD) every live connection so pumping workers
 * see EOF while in-flight responses still flush, then drains the
 * pool. No request that reached a worker is abandoned mid-write.
 */

#ifndef PARCHMINT_SVC_SERVER_HH
#define PARCHMINT_SVC_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "svc/handler.hh"
#include "svc/http.hh"

namespace parchmint::exec
{
class ThreadPool;
}

namespace parchmint::svc
{

/** Server knobs. */
struct ServerOptions
{
    /** Listen address; loopback by default. */
    std::string bindAddress = "127.0.0.1";
    /** TCP port; 0 = kernel-assigned ephemeral (read port()). */
    uint16_t port = 0;
    /** Worker threads; 0 = one per hardware thread. */
    size_t threads = 0;
    /** Parser limits applied per connection. */
    ParserLimits limits;
    /** Close a keep-alive connection idle this long; also bounds
     * a blocked response write. Zero = never. */
    std::chrono::milliseconds idleTimeout{5000};
};

/** See file comment. */
class HttpServer
{
  public:
    /** The handler must outlive the server. */
    HttpServer(HttpHandler &handler, ServerOptions options = {});

    /** Stops if still running. */
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /**
     * Bind, listen, and start accepting.
     * @throws UserError when the address cannot be bound.
     */
    void start();

    /** The bound port (resolves port 0 to the actual one). */
    uint16_t port() const { return port_; }

    /** True between start() and stop(). */
    bool running() const
    {
        return started_.load(std::memory_order_acquire);
    }

    /** Graceful drain-then-shutdown; idempotent. */
    void stop();

    /** Connections accepted over the server's lifetime. */
    uint64_t connectionsAccepted() const
    {
        return connections_.load(std::memory_order_relaxed);
    }

  private:
    /** One live connection's socket + parser state; shared_ptr
     * only because pool jobs must be copyable — ownership is
     * logically unique (poller or one worker). */
    struct Connection;

    void eventLoop();
    void serveConnection(std::shared_ptr<Connection> connection);
    void returnToPoller(std::shared_ptr<Connection> connection);
    void closeConnection(const Connection &connection);
    bool sendAll(const Connection &connection,
                 std::string_view data);
    void wakePoller();

    HttpHandler &handler_;
    ServerOptions options_;
    uint16_t port_ = 0;
    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::thread eventThread_;
    std::unique_ptr<exec::ThreadPool> pool_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<uint64_t> connections_{0};
    std::mutex liveMutex_;
    std::set<int> liveFds_;
    /** Connections handed back by workers, awaiting re-poll. */
    std::mutex returnedMutex_;
    std::vector<std::shared_ptr<Connection>> returned_;
};

} // namespace parchmint::svc

#endif // PARCHMINT_SVC_SERVER_HH
