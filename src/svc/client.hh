/**
 * @file
 * Minimal blocking HTTP/1.1 client.
 *
 * The client half of the service's loopback story: the load
 * generator, the serving benchmark and the end-to-end tests all
 * talk to parchmintd through this class, so the repo exercises its
 * own wire format from both sides without an external HTTP
 * dependency. One client = one connection, reused across requests
 * (keep-alive); transport failures surface as UserError and the
 * caller decides whether to reconnect.
 *
 * Stale keep-alive handling: a server may close an idle connection
 * at any time (parchmintd does after ServerOptions::idleTimeout),
 * and the client only discovers it when the next send or receive
 * fails. When a *reused* connection dies before yielding a single
 * response byte, the request cannot have been processed, so the
 * client transparently reconnects and retries it once — callers
 * never see the idle-timeout race. A failure on a fresh connection,
 * or after response bytes arrived, is reported as UserError as
 * before (retrying those could double-apply a request).
 * staleRetries() counts the transparent retries; connectsOpened()
 * against requestsSent() measures how well keep-alive reuse is
 * working (a pooled router cares).
 */

#ifndef PARCHMINT_SVC_CLIENT_HH
#define PARCHMINT_SVC_CLIENT_HH

#include <chrono>
#include <cstdint>
#include <string>

#include "svc/http.hh"

namespace parchmint::svc
{

/** See file comment. */
class HttpClient
{
  public:
    /**
     * @param host Dotted-quad IPv4 address ("127.0.0.1").
     * @param port Server port.
     */
    HttpClient(std::string host, uint16_t port);

    /** Closes the connection. */
    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    /**
     * Send a request and block for the response, connecting (or
     * reconnecting) as needed.
     * @throws UserError on connect/send/receive failure or a
     *         malformed response.
     */
    HttpResponse request(const HttpRequest &request);

    /** Convenience: GET @p target. */
    HttpResponse get(const std::string &target);

    /** Convenience: POST a JSON body to @p target. */
    HttpResponse post(const std::string &target,
                      std::string body);

    /** True while the underlying connection is believed open. */
    bool connected() const { return fd_ >= 0; }

    /** Drop the connection (a later request reconnects). */
    void close();

    /** Receive timeout for responses (default 30 s). */
    void setTimeout(std::chrono::milliseconds timeout)
    {
        timeout_ = timeout;
    }

    /** Requests attempted through request(). */
    uint64_t requestsSent() const { return requestsSent_; }
    /** TCP connections opened over the client's lifetime. */
    uint64_t connectsOpened() const { return connectsOpened_; }
    /** Transparent reconnect-and-retry count (stale keep-alive). */
    uint64_t staleRetries() const { return staleRetries_; }

  private:
    void connect();
    /**
     * One send+receive attempt over the current connection.
     * @return true with @p response filled on success; false when
     * the connection proved stale — the peer hung up before any
     * response byte — and @p mayRetry allows a retry. Throws
     * UserError for every other failure.
     */
    bool attempt(const std::string &wire, bool mayRetry,
                 HttpResponse &response);

    std::string host_;
    uint16_t port_;
    int fd_ = -1;
    std::chrono::milliseconds timeout_{30000};
    uint64_t requestsSent_ = 0;
    uint64_t connectsOpened_ = 0;
    uint64_t staleRetries_ = 0;
};

} // namespace parchmint::svc

#endif // PARCHMINT_SVC_CLIENT_HH
