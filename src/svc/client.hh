/**
 * @file
 * Minimal blocking HTTP/1.1 client.
 *
 * The client half of the service's loopback story: the load
 * generator, the serving benchmark and the end-to-end tests all
 * talk to parchmintd through this class, so the repo exercises its
 * own wire format from both sides without an external HTTP
 * dependency. One client = one connection, reused across requests
 * (keep-alive); transport failures surface as UserError and the
 * caller decides whether to reconnect.
 */

#ifndef PARCHMINT_SVC_CLIENT_HH
#define PARCHMINT_SVC_CLIENT_HH

#include <chrono>
#include <cstdint>
#include <string>

#include "svc/http.hh"

namespace parchmint::svc
{

/** See file comment. */
class HttpClient
{
  public:
    /**
     * @param host Dotted-quad IPv4 address ("127.0.0.1").
     * @param port Server port.
     */
    HttpClient(std::string host, uint16_t port);

    /** Closes the connection. */
    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    /**
     * Send a request and block for the response, connecting (or
     * reconnecting) as needed.
     * @throws UserError on connect/send/receive failure or a
     *         malformed response.
     */
    HttpResponse request(const HttpRequest &request);

    /** Convenience: GET @p target. */
    HttpResponse get(const std::string &target);

    /** Convenience: POST a JSON body to @p target. */
    HttpResponse post(const std::string &target,
                      std::string body);

    /** True while the underlying connection is believed open. */
    bool connected() const { return fd_ >= 0; }

    /** Drop the connection (a later request reconnects). */
    void close();

    /** Receive timeout for responses (default 30 s). */
    void setTimeout(std::chrono::milliseconds timeout)
    {
        timeout_ = timeout;
    }

  private:
    void connect();

    std::string host_;
    uint16_t port_;
    int fd_ = -1;
    std::chrono::milliseconds timeout_{30000};
};

} // namespace parchmint::svc

#endif // PARCHMINT_SVC_CLIENT_HH
