/**
 * @file
 * The netlist service: ParchMint pipeline stages behind JSON-over-
 * HTTP endpoints, with content-addressed caching and admission
 * control.
 *
 * Endpoints (all bodies and responses are JSON):
 *
 *   POST /v1/validate      schema + semantic rules over the posted
 *                          netlist document
 *   POST /v1/characterize  netlist statistics (analysis/)
 *   POST /v1/place         annealing placement; placed netlist +
 *                          cost in the response
 *   POST /v1/route         placement + routing; routed netlist +
 *                          route metrics in the response
 *   POST /v1/mix           place + route, then the steady-state
 *                          concentration solve (sim/mixing.hh);
 *                          per-outlet profiles + mixing quality.
 *                          Body: a netlist, or {"netlist": {...},
 *                          "inlets": {port: c}, "pressure_kpa": P}
 *   POST /v1/dilute        dilution-tree synthesis
 *                          (sim/dilution.hh) from a spec body
 *                          {"target": t, "tolerance": e,
 *                          "max_depth": d}; the plan's mixer tree
 *                          is returned as a ParchMint netlist
 *   POST /v1/schedule      place + route, then flow-path
 *                          scheduling (sim/schedule.hh); makespan,
 *                          storage-channel counts and the op
 *                          timeline. Body: a netlist, or
 *                          {"netlist": {...}, "concurrency": K}
 *   POST /v1/generate      expand one instance of a generator
 *                          spec (gen/spec.hh). Body: a spec
 *                          document, plus an optional "index"
 *                          member selecting the instance
 *                          (default 0; must be below the spec's
 *                          count). Pure function of the body, so
 *                          responses cache like /v1/dilute.
 *   GET  /v1/suite         the standard benchmark registry
 *   GET  /v1/suite/<name>  one standard benchmark's netlist
 *   GET  /v1/corpus        the mounted corpus's manifest summary
 *                          (404 unless the daemon was started
 *                          with a corpus directory)
 *   GET  /v1/corpus/<ref>  one corpus netlist by file name or
 *                          hash16; the file is read from disk per
 *                          request and hash-verified, so serving
 *                          a 10k-netlist corpus holds O(1)
 *                          netlists in memory
 *   GET  /healthz          liveness probe
 *   GET  /statsz           counters, cache and admission state,
 *                          stamped with manifest_version and the
 *                          environment snapshot (obs/env.hh)
 *   GET  /metricsz         Prometheus text exposition of the
 *                          metrics registry (text/plain, not JSON)
 *   GET  /tracez           the N most recent and N slowest
 *                          completed requests: trace ID, status,
 *                          cache provenance, per-stage timings
 *   GET  /logz             flight-recorder events as JSONL plus a
 *                          logz_summary trailer with the logger's
 *                          written/dropped counters (text/plain)
 *   GET  /profilez?seconds=S  capture a CPU profile for S seconds
 *                          (clamped to 1..30, default 2) and return
 *                          folded stacks (text/plain); 409 when a
 *                          capture is already running
 *
 * Trace IDs: every request resolves to one. A client may supply
 * its own via the `X-Parchmint-Trace` header (1..64 chars of
 * [A-Za-z0-9._-]); absent the header, the service mints a
 * deterministic ID from its seed and a request ordinal. A
 * malformed, oversized, or self-conflicting header is answered
 * with 400 — but the response still carries a freshly minted ID so
 * the rejection itself is traceable. The resolved ID is echoed in
 * the `X-Parchmint-Trace` response header and stamped into every
 * span, log line, and flight-recorder event the request produces.
 * (The echo makes full response *messages* differ per request;
 * cached response *bodies* remain byte-identical.)
 *
 * The POST pipeline is fronted by the two-level content-addressed
 * cache (svc/cache.hh): a raw-body hash resolves repeated request
 * bytes without parsing, the canonical-JSON hash unifies
 * reformatted duplicates, and per-endpoint results are memoized so
 * a repeated netlist costs one hash probe and one memcpy. Heavy
 * endpoints pass the admission gate first (svc/admission.hh;
 * overload → 429 + Retry-After) and run under a per-request
 * exec::CancelToken deadline checked at stage boundaries (expiry →
 * 503).
 *
 * Determinism: the stochastic endpoints seed the annealer from the
 * service seed (or an explicit ?seed= query parameter); the
 * annealer derives its stream from the seed and the device name, so
 * identical requests produce byte-identical responses — served
 * from cache or recomputed, under any concurrency.
 *
 * handle() is thread-safe and is called concurrently by every
 * server worker.
 */

#ifndef PARCHMINT_SVC_SERVICE_HH
#define PARCHMINT_SVC_SERVICE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "exec/cancel.hh"
#include "gen/corpus.hh"
#include "json/value.hh"
#include "obs/reqtrace.hh"
#include "svc/admission.hh"
#include "svc/cache.hh"
#include "svc/handler.hh"
#include "svc/http.hh"

namespace parchmint::svc
{

/** The request/response header carrying the trace ID (requests
 * arrive with parser-lowercased names). */
inline constexpr const char *kTraceHeader = "x-parchmint-trace";
inline constexpr const char *kTraceHeaderEcho = "X-Parchmint-Trace";

/** Outcome of resolveTraceHeader(). */
struct TraceResolution
{
    /** False: the header was malformed; answer 400 with @c error.
     * @c id still holds a freshly minted replacement. */
    bool ok = true;
    /** The resolved (accepted or minted) trace ID. */
    std::string id;
    /** True when the ID was minted rather than client-supplied. */
    bool minted = false;
    std::string error;
};

/**
 * Resolve a request's trace ID per the header contract above.
 * Pure: the same (request, seed, ordinal) always resolves
 * identically — the property the http_trace_header fuzz target
 * checks. Duplicate headers with byte-identical values are
 * accepted; conflicting duplicates are malformed.
 */
TraceResolution resolveTraceHeader(const HttpRequest &request,
                                   uint64_t seed,
                                   uint64_t ordinal);

/**
 * A /v1/mix or /v1/schedule request body: either a bare netlist
 * document, or a wrapper object {"netlist": {...}} with optional
 * solver knobs. The bare form lets loadgen and CI post suite
 * netlists unmodified.
 */
struct FlowRequest
{
    /** The netlist document (points into the request document). */
    const json::Value *netlist = nullptr;
    /** Prescribed inlet concentrations (mix only). */
    std::map<std::string, double> inlets;
    /** Inlet drive pressure, Pa (mix only). */
    double pressurePa = 20000.0;
    /** Manifold slots (schedule only). */
    size_t concurrency = 2;
};

/**
 * Parse a flow request body per the contract above. Pure — the
 * property the mix_request fuzz target leans on.
 *
 * @throws UserError for malformed wrappers (non-object netlist,
 *         non-numeric inlets, out-of-range pressure/concurrency).
 */
FlowRequest parseFlowRequest(const json::Value &document);

/** One /tracez request record as JSON (shared with the cluster
 * router, which serves its own capture). */
json::Value
requestRecordJson(const obs::reqtrace::RequestRecord &record);

/** A whole /tracez document (recent + slowest boards) over a
 * capture, stamped with @p schema. */
json::Value
captureJson(const obs::reqtrace::RequestCapture &capture,
            const std::string &schema);

/** Service knobs. */
struct ServiceOptions
{
    /** Base seed for the stochastic endpoints; a request's
     * ?seed= query parameter overrides it. */
    uint64_t seed = 1;
    /** Cache shards (both levels). */
    size_t cacheShards = 8;
    /** Total cache byte budget: 3/4 for results, 1/4 for parsed
     * documents. 0 disables caching. */
    size_t cacheBytes = 64 * 1024 * 1024;
    /** Concurrent heavy requests admitted; 0 = two per hardware
     * thread. */
    size_t maxInflight = 0;
    /** Per-request deadline, checked at stage boundaries; zero =
     * none. */
    std::chrono::milliseconds requestDeadline{0};
    /** Request body budget, surfaced to the HTTP parser by the
     * server. */
    size_t maxBodyBytes = ParserLimits{}.maxBodyBytes;
    /** Generated-corpus directory served under /v1/corpus
     * (gen/corpus.hh); empty = corpus endpoints answer 404. The
     * manifest is loaded lazily on first use and then pinned. */
    std::string corpusDir;
};

/** See file comment. */
class NetlistService : public HttpHandler
{
  public:
    explicit NetlistService(ServiceOptions options = {});

    /** Dispatch one request (thread-safe). */
    HttpResponse handle(const HttpRequest &request) override;

    /**
     * Like handle(), but under a caller-supplied cancellation
     * token instead of a fresh deadline token — the seam tests use
     * to exercise the 503 path deterministically.
     */
    HttpResponse handle(const HttpRequest &request,
                        const exec::CancelToken &token);

    const ServiceOptions &options() const { return options_; }

    /** Live cache counters (document level). */
    CacheStats documentCacheStats() const;
    /** Live cache counters (result level). */
    CacheStats resultCacheStats() const;
    const AdmissionController &admission() const
    {
        return admission_;
    }

    /** The /tracez capture (recent + slowest requests). */
    const obs::reqtrace::RequestCapture &capture() const
    {
        return capture_;
    }

  private:
    /** A parsed request body, shared across endpoints. */
    struct ParsedDoc
    {
        /** hashHex of the canonical-JSON content hash. */
        std::string canonKey;
        json::Value document;
    };

    HttpResponse dispatch(const HttpRequest &request,
                          const exec::CancelToken &token);
    HttpResponse handlePipeline(const std::string &endpoint,
                                const HttpRequest &request,
                                const exec::CancelToken &token);
    std::string computeResult(const std::string &endpoint,
                              const json::Value &document,
                              uint64_t seed,
                              const exec::CancelToken &token);
    HttpResponse handleSuiteIndex();
    HttpResponse handleSuiteNetlist(const std::string &name);
    HttpResponse handleCorpusIndex();
    HttpResponse handleCorpusNetlist(const std::string &ref);
    /** The pinned corpus manifest, loading it on first use.
     * @throws UserError when no corpus is mounted or the manifest
     *         is unreadable. */
    std::shared_ptr<const gen::CorpusManifest> corpusManifest();
    HttpResponse handleStatsz();
    HttpResponse handleMetricsz();
    HttpResponse handleTracez();
    HttpResponse handleLogz();
    HttpResponse handleProfilez(const HttpRequest &request);

    std::shared_ptr<const ParsedDoc>
    parseBody(const std::string &body);

    ServiceOptions options_;
    AdmissionController admission_;
    ShardedLruCache<ParsedDoc> docCache_;
    ShardedLruCache<std::string> resultCache_;
    obs::reqtrace::RequestCapture capture_;
    /** Ordinal feeding minted trace IDs (deterministic per seed). */
    std::atomic<uint64_t> traceOrdinal_{0};
    /** Lazily pinned corpus manifest (see corpusManifest()). */
    std::mutex corpusMutex_;
    std::shared_ptr<const gen::CorpusManifest> corpusManifest_;
};

} // namespace parchmint::svc

#endif // PARCHMINT_SVC_SERVICE_HH
