#include "svc/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hh"

namespace parchmint::svc
{

HttpClient::HttpClient(std::string host, uint16_t port)
    : host_(std::move(host)),
      port_(port)
{
}

HttpClient::~HttpClient()
{
    close();
}

void
HttpClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
HttpClient::connect()
{
    close();
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal(std::string("cannot create socket: ") +
              std::strerror(errno));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &address.sin_addr) !=
        1) {
        ::close(fd);
        fatal("invalid host address \"" + host_ + "\"");
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&address),
                  sizeof(address)) != 0) {
        std::string reason = std::strerror(errno);
        ::close(fd);
        fatal("cannot connect to " + host_ + ":" +
              std::to_string(port_) + ": " + reason);
    }
    if (timeout_.count() > 0) {
        struct timeval tv;
        tv.tv_sec = static_cast<time_t>(timeout_.count() / 1000);
        tv.tv_usec = static_cast<suseconds_t>(
            (timeout_.count() % 1000) * 1000);
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                     sizeof(tv));
    }
    fd_ = fd;
    ++connectsOpened_;
}

bool
HttpClient::attempt(const std::string &wire, bool mayRetry,
                    HttpResponse &response)
{
    size_t sent = 0;
    while (sent < wire.size()) {
        ssize_t n = ::send(fd_, wire.data() + sent,
                           wire.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            bool stale =
                errno == EPIPE || errno == ECONNRESET;
            std::string reason = std::strerror(errno);
            close();
            if (stale && mayRetry)
                return false;
            fatal("send failed: " + reason);
        }
        sent += static_cast<size_t>(n);
    }

    ResponseParser parser;
    char buffer[16 * 1024];
    size_t received = 0;
    while (parser.state() == ResponseParser::State::Headers ||
           parser.state() == ResponseParser::State::Body) {
        ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (n > 0) {
            received += static_cast<size_t>(n);
            parser.feed(std::string_view(
                buffer, static_cast<size_t>(n)));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        // A hangup before the first response byte on a reused
        // connection is the keep-alive idle-timeout race: the
        // request was never processed, so it is safe to retry.
        bool stale = received == 0 &&
                     (n == 0 || errno == ECONNRESET ||
                      errno == EPIPE);
        std::string reason =
            n == 0 ? "connection closed by server"
                   : std::string("recv failed: ") +
                         std::strerror(errno);
        close();
        if (stale && mayRetry)
            return false;
        fatal(reason);
    }
    if (parser.state() == ResponseParser::State::Error) {
        std::string reason = parser.errorReason();
        close();
        fatal("malformed response: " + reason);
    }

    response = parser.response();
    const std::string *connection =
        response.findHeader("connection");
    if (connection && *connection == "close")
        close();
    return true;
}

HttpResponse
HttpClient::request(const HttpRequest &request)
{
    ++requestsSent_;
    bool reused = fd_ >= 0;
    if (!reused)
        connect();

    std::string wire = serializeRequest(request);
    HttpResponse response;
    if (attempt(wire, /*mayRetry=*/reused, response))
        return response;

    // Stale reused connection: reconnect and retry exactly once.
    ++staleRetries_;
    connect();
    attempt(wire, /*mayRetry=*/false, response);
    return response;
}

HttpResponse
HttpClient::get(const std::string &target)
{
    HttpRequest request;
    request.method = "GET";
    request.target = target;
    return this->request(request);
}

HttpResponse
HttpClient::post(const std::string &target, std::string body)
{
    HttpRequest request;
    request.method = "POST";
    request.target = target;
    request.headers.emplace_back("content-type",
                                 "application/json");
    request.body = std::move(body);
    return this->request(request);
}

} // namespace parchmint::svc
