#include "svc/service.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <thread>

#include "analysis/netlist_stats.hh"
#include "analysis/stats_json.hh"
#include "common/error.hh"
#include "common/strings.hh"
#include "core/deserialize.hh"
#include "core/serialize.hh"
#include "exec/thread_pool.hh"
#include "gen/generator.hh"
#include "json/parse.hh"
#include "json/write.hh"
#include "obs/clock.hh"
#include "obs/env.hh"
#include "obs/flight.hh"
#include "obs/log.hh"
#include "obs/manifest.hh"
#include "obs/obs.hh"
#include "obs/profiler.hh"
#include "obs/prometheus.hh"
#include "obs/report.hh"
#include "place/annealing_placer.hh"
#include "place/cost.hh"
#include "route/router.hh"
#include "schema/rules.hh"
#include "sim/dilution.hh"
#include "sim/mixing.hh"
#include "sim/schedule.hh"
#include "suite/suite.hh"

namespace parchmint::svc
{

namespace
{

/** Compact JSON text of a value (the wire format). */
std::string
compactJson(const json::Value &value)
{
    json::WriteOptions options;
    options.pretty = false;
    return json::write(value, options);
}

HttpResponse
jsonResponse(int status, std::string body)
{
    HttpResponse response;
    response.status = status;
    response.setHeader("Content-Type", "application/json");
    response.body = std::move(body);
    return response;
}

HttpResponse
errorResponse(int status, const std::string &message)
{
    json::Value body = json::Value::makeObject();
    body.set("error", json::Value(message));
    return jsonResponse(status, compactJson(body));
}

} // namespace

FlowRequest
parseFlowRequest(const json::Value &document)
{
    FlowRequest request;
    request.netlist = &document;
    if (!document.isObject() || !document.find("netlist"))
        return request;
    const json::Value *netlist = document.find("netlist");
    if (!netlist->isObject())
        fatal("\"netlist\" must be an object");
    request.netlist = netlist;
    if (const json::Value *inlets = document.find("inlets")) {
        if (!inlets->isObject())
            fatal("\"inlets\" must map port IDs to "
                  "concentrations");
        for (const auto &[port, value] : inlets->members()) {
            if (!value.isNumber())
                fatal("inlet concentration for \"" + port +
                      "\" must be a number");
            request.inlets[port] = value.asDouble();
        }
    }
    if (const json::Value *pressure =
            document.find("pressure_kpa")) {
        if (!pressure->isNumber())
            fatal("\"pressure_kpa\" must be a number");
        double kpa = pressure->asDouble();
        if (!std::isfinite(kpa) || kpa <= 0.0 || kpa > 1e6)
            fatal("\"pressure_kpa\" must be a positive finite "
                  "number (at most 1e6)");
        request.pressurePa = 1000.0 * kpa;
    }
    if (const json::Value *concurrency =
            document.find("concurrency")) {
        if (!concurrency->isInteger() ||
            concurrency->asInteger() < 1 ||
            concurrency->asInteger() > 64)
            fatal("\"concurrency\" must be an integer in "
                  "[1, 64]");
        request.concurrency =
            static_cast<size_t>(concurrency->asInteger());
    }
    return request;
}

namespace
{

/** Short metric label for a request path ("other" if unknown). */
std::string
endpointLabel(const std::string &path)
{
    if (path == "/v1/validate")
        return "validate";
    if (path == "/v1/characterize")
        return "characterize";
    if (path == "/v1/place")
        return "place";
    if (path == "/v1/route")
        return "route";
    if (path == "/v1/mix")
        return "mix";
    if (path == "/v1/dilute")
        return "dilute";
    if (path == "/v1/schedule")
        return "schedule";
    if (path == "/v1/generate")
        return "generate";
    if (path == "/v1/suite" || startsWith(path, "/v1/suite/"))
        return "suite";
    if (path == "/v1/corpus" || startsWith(path, "/v1/corpus/"))
        return "corpus";
    if (path == "/healthz")
        return "healthz";
    if (path == "/statsz")
        return "statsz";
    if (path == "/metricsz")
        return "metricsz";
    if (path == "/tracez")
        return "tracez";
    if (path == "/logz")
        return "logz";
    if (path == "/profilez")
        return "profilez";
    return "other";
}

json::Value
cacheStatsJson(const CacheStats &stats)
{
    json::Value out = json::Value::makeObject();
    out.set("hits", json::Value(static_cast<int64_t>(stats.hits)));
    out.set("misses",
            json::Value(static_cast<int64_t>(stats.misses)));
    out.set("insertions",
            json::Value(static_cast<int64_t>(stats.insertions)));
    out.set("evictions",
            json::Value(static_cast<int64_t>(stats.evictions)));
    out.set("oversized",
            json::Value(static_cast<int64_t>(stats.oversized)));
    out.set("entries",
            json::Value(static_cast<int64_t>(stats.entries)));
    out.set("bytes",
            json::Value(static_cast<int64_t>(stats.bytes)));
    return out;
}

} // namespace

json::Value
requestRecordJson(const obs::reqtrace::RequestRecord &record)
{
    json::Value stages = json::Value::makeArray();
    for (const obs::reqtrace::StageTiming &stage :
         record.stages) {
        json::Value entry = json::Value::makeObject();
        entry.set("name", json::Value(stage.name));
        entry.set("dur_us", json::Value(stage.durationUs));
        stages.append(std::move(entry));
    }
    json::Value out = json::Value::makeObject();
    out.set("seq", json::Value(
                       static_cast<int64_t>(record.sequence)));
    out.set("trace", json::Value(record.traceId));
    out.set("method", json::Value(record.method));
    out.set("path", json::Value(record.path));
    out.set("endpoint", json::Value(record.endpoint));
    out.set("cache", json::Value(record.cache));
    out.set("status", json::Value(record.status));
    out.set("start_us", json::Value(record.startUs));
    out.set("dur_us", json::Value(record.durationUs));
    out.set("stages", std::move(stages));
    return out;
}

json::Value
captureJson(const obs::reqtrace::RequestCapture &capture,
            const std::string &schema)
{
    json::Value recent = json::Value::makeArray();
    for (const obs::reqtrace::RequestRecord &record :
         capture.recent())
        recent.append(requestRecordJson(record));
    json::Value slowest = json::Value::makeArray();
    for (const obs::reqtrace::RequestRecord &record :
         capture.slowest())
        slowest.append(requestRecordJson(record));

    json::Value out = json::Value::makeObject();
    out.set("schema", json::Value(schema));
    out.set("completed",
            json::Value(
                static_cast<int64_t>(capture.completed())));
    out.set("recent_capacity",
            json::Value(static_cast<int64_t>(
                capture.recentCapacity())));
    out.set("slowest_capacity",
            json::Value(static_cast<int64_t>(
                capture.slowestCapacity())));
    out.set("recent", std::move(recent));
    out.set("slowest", std::move(slowest));
    return out;
}

TraceResolution
resolveTraceHeader(const HttpRequest &request, uint64_t seed,
                   uint64_t ordinal)
{
    TraceResolution out;
    const std::string *seen = nullptr;
    for (const auto &[name, value] : request.headers) {
        if (name != kTraceHeader)
            continue;
        if (!obs::reqtrace::isValidTraceId(value)) {
            out.ok = false;
            out.error =
                value.size() >
                        obs::reqtrace::kMaxTraceIdLength
                    ? "X-Parchmint-Trace too long (max 64 bytes)"
                    : "malformed X-Parchmint-Trace (want 1..64 "
                      "chars of [A-Za-z0-9._-])";
            break;
        }
        if (seen != nullptr && *seen != value) {
            out.ok = false;
            out.error =
                "conflicting duplicate X-Parchmint-Trace headers";
            break;
        }
        seen = &value;
    }
    if (out.ok && seen != nullptr) {
        out.id = *seen;
        return out;
    }
    // Absent or rejected header: mint. The rejection response
    // carries the minted ID too, so it is itself traceable.
    out.id = obs::reqtrace::mintTraceId(seed, ordinal);
    out.minted = true;
    return out;
}

NetlistService::NetlistService(ServiceOptions options)
    : options_(options),
      admission_(options.maxInflight == 0
                     ? 2 * exec::ThreadPool::hardwareThreads()
                     : options.maxInflight),
      docCache_(options.cacheShards, options.cacheBytes / 4),
      resultCache_(options.cacheShards,
                   options.cacheBytes - options.cacheBytes / 4)
{
}

CacheStats
NetlistService::documentCacheStats() const
{
    return docCache_.stats();
}

CacheStats
NetlistService::resultCacheStats() const
{
    return resultCache_.stats();
}

HttpResponse
NetlistService::handle(const HttpRequest &request)
{
    return handle(request, exec::CancelToken::withDeadline(
                               options_.requestDeadline));
}

HttpResponse
NetlistService::handle(const HttpRequest &request,
                       const exec::CancelToken &token)
{
    obs::Stopwatch watch;
    std::string label = endpointLabel(request.path());

    TraceResolution trace = resolveTraceHeader(
        request, options_.seed,
        traceOrdinal_.fetch_add(1, std::memory_order_relaxed));

    // Install the trace context before any work: every span, log
    // line, and flight event below inherits the ID, including work
    // fanned out through the thread pool.
    obs::reqtrace::ScopedTraceContext context(trace.id);
    obs::flight::note(obs::flight::EventType::RequestStart,
                      trace.id, label);

    obs::reqtrace::RequestRecord record;
    record.traceId = trace.id;
    record.method = request.method;
    record.path = request.path();
    record.endpoint = label;
    record.startUs = capture_.nowUs();

    HttpResponse response;
    {
        obs::reqtrace::ActiveRequest active(&record);
        if (!trace.ok) {
            response = errorResponse(400, trace.error);
        } else {
            try {
                response = dispatch(request, token);
            } catch (const exec::Cancelled &cancelled) {
                obs::flight::note(
                    obs::flight::EventType::Cancel, trace.id,
                    label, 503);
                response = errorResponse(503, cancelled.what());
            } catch (const json::ParseError &error) {
                response = errorResponse(
                    400,
                    std::string("invalid JSON: ") + error.what());
            } catch (const UserError &error) {
                response = errorResponse(422, error.what());
            } catch (const std::exception &error) {
                response = errorResponse(500, error.what());
            }
        }
    }

    record.status = response.status;
    record.durationUs = watch.elapsedUs();
    std::string cacheProvenance = record.cache;
    capture_.record(std::move(record));
    obs::flight::note(obs::flight::EventType::RequestEnd,
                      trace.id, label, response.status);
    response.setHeader(kTraceHeaderEcho, trace.id);

    obs::LogLevel logLevel =
        response.status >= 500
            ? obs::LogLevel::Error
            : (response.status >= 400 ? obs::LogLevel::Warn
                                      : obs::LogLevel::Info);
    PM_LOG_AT(logLevel, "svc.request", "served",
              {{"endpoint", label},
               {"status", std::to_string(response.status)},
               {"ms", std::to_string(watch.elapsedMs())},
               {"cache", cacheProvenance}});

    // Request/response accounting is unconditional (not gated on
    // the obs switch): /statsz must answer on a daemon launched
    // without --report. Counters are bounded; the per-endpoint
    // latency histograms record samples and stay behind the
    // switch.
    obs::Registry &registry = obs::registry();
    registry.add("svc.requests", 1);
    registry.add("svc.requests." + label, 1);
    int status_class = response.status / 100;
    registry.add("svc.responses." +
                     std::to_string(status_class) + "xx",
                 1);
    if (response.status == 429)
        registry.add("svc.responses.429", 1);
    if (response.status == 503)
        registry.add("svc.responses.503", 1);
    PM_OBS_HIST("svc." + label + ".ms", watch.elapsedMs());
    return response;
}

HttpResponse
NetlistService::dispatch(const HttpRequest &request,
                         const exec::CancelToken &token)
{
    const std::string path = request.path();

    if (path == "/healthz") {
        json::Value body = json::Value::makeObject();
        body.set("status", json::Value("ok"));
        return jsonResponse(200, compactJson(body));
    }
    if (path == "/statsz") {
        if (request.method != "GET") {
            HttpResponse response =
                errorResponse(405, "use GET " + path);
            response.setHeader("Allow", "GET");
            return response;
        }
        return handleStatsz();
    }
    if (path == "/metricsz") {
        if (request.method != "GET") {
            HttpResponse response =
                errorResponse(405, "use GET " + path);
            response.setHeader("Allow", "GET");
            return response;
        }
        return handleMetricsz();
    }
    if (path == "/tracez" || path == "/logz" ||
        path == "/profilez") {
        if (request.method != "GET") {
            HttpResponse response =
                errorResponse(405, "use GET " + path);
            response.setHeader("Allow", "GET");
            return response;
        }
        if (path == "/tracez")
            return handleTracez();
        if (path == "/logz")
            return handleLogz();
        return handleProfilez(request);
    }
    if (path == "/v1/suite" || startsWith(path, "/v1/suite/")) {
        if (request.method != "GET") {
            HttpResponse response =
                errorResponse(405, "use GET " + path);
            response.setHeader("Allow", "GET");
            return response;
        }
        if (path == "/v1/suite")
            return handleSuiteIndex();
        return handleSuiteNetlist(
            path.substr(std::string("/v1/suite/").size()));
    }
    if (path == "/v1/corpus" || startsWith(path, "/v1/corpus/")) {
        if (request.method != "GET") {
            HttpResponse response =
                errorResponse(405, "use GET " + path);
            response.setHeader("Allow", "GET");
            return response;
        }
        if (path == "/v1/corpus")
            return handleCorpusIndex();
        return handleCorpusNetlist(
            path.substr(std::string("/v1/corpus/").size()));
    }
    if (path == "/v1/validate" || path == "/v1/characterize" ||
        path == "/v1/place" || path == "/v1/route" ||
        path == "/v1/mix" || path == "/v1/dilute" ||
        path == "/v1/schedule" || path == "/v1/generate") {
        if (request.method != "POST") {
            HttpResponse response =
                errorResponse(405, "use POST " + path);
            response.setHeader("Allow", "POST");
            return response;
        }
        return handlePipeline(endpointLabel(path), request,
                              token);
    }
    return errorResponse(404,
                         "no such endpoint \"" + path + "\"");
}

std::shared_ptr<const NetlistService::ParsedDoc>
NetlistService::parseBody(const std::string &body)
{
    std::string raw_key = "doc:" + hashHex(contentHash(body));
    if (std::shared_ptr<const ParsedDoc> hit =
            docCache_.find(raw_key)) {
        obs::reqtrace::noteCache("doc");
        return hit;
    }
    json::Value parsed = json::parse(body);
    std::string canonical = canonicalJsonText(parsed);
    auto doc = std::make_shared<ParsedDoc>();
    doc->canonKey = hashHex(contentHash(canonical));
    doc->document = std::move(parsed);
    // Cost proxy for the in-memory document: JSON value trees run
    // a small multiple of their text size.
    docCache_.insert(raw_key, doc, 2 * body.size());
    return doc;
}

HttpResponse
NetlistService::handlePipeline(const std::string &endpoint,
                               const HttpRequest &request,
                               const exec::CancelToken &token)
{
    AdmissionController::Ticket ticket = admission_.tryAdmit();
    obs::registry().setGauge(
        "svc.inflight",
        static_cast<double>(admission_.inflight()));
    if (!ticket) {
        obs::flight::note(obs::flight::EventType::Admission,
                          obs::reqtrace::currentTraceId(),
                          endpoint, 429);
        HttpResponse response = errorResponse(
            429, "server at capacity (" +
                     std::to_string(admission_.maxInflight()) +
                     " requests in flight); retry shortly");
        response.setHeader("Retry-After", "1");
        return response;
    }
    if (request.body.empty())
        return errorResponse(400, "empty request body");

    token.throwIfCancelled("admit " + endpoint);
    obs::reqtrace::noteCache("miss");
    std::shared_ptr<const ParsedDoc> doc;
    {
        obs::reqtrace::ScopedStage stage("parse");
        doc = parseBody(request.body);
    }
    token.throwIfCancelled("parse " + endpoint);

    // Seeded endpoints run the annealer; dilute is a pure function
    // of the spec document alone.
    bool seeded = endpoint == "place" || endpoint == "route" ||
                  endpoint == "mix" || endpoint == "schedule";
    uint64_t seed = options_.seed;
    if (seeded) {
        std::string param = request.queryParam("seed");
        if (!param.empty())
            seed = std::strtoull(param.c_str(), nullptr, 10);
    }

    std::string key = endpoint;
    key += ':';
    key += doc->canonKey;
    if (seeded) {
        key += ':';
        key += std::to_string(seed);
    }
    if (std::shared_ptr<const std::string> hit =
            resultCache_.find(key)) {
        obs::reqtrace::noteCache("result");
        obs::flight::note(obs::flight::EventType::CacheHit,
                          obs::reqtrace::currentTraceId(),
                          endpoint, 200);
        return jsonResponse(200, *hit);
    }

    std::string body =
        computeResult(endpoint, doc->document, seed, token);
    resultCache_.insert(
        key, std::make_shared<const std::string>(body),
        body.size());
    return jsonResponse(200, std::move(body));
}

std::string
NetlistService::computeResult(const std::string &endpoint,
                              const json::Value &document,
                              uint64_t seed,
                              const exec::CancelToken &token)
{
    PM_OBS_SPAN(endpoint, "svc");

    if (endpoint == "validate") {
        obs::reqtrace::ScopedStage stage("validate");
        std::vector<schema::Issue> issues =
            schema::validateDocument(document);
        size_t errors = 0;
        size_t warnings = 0;
        json::Value list = json::Value::makeArray();
        for (const schema::Issue &issue : issues) {
            bool is_error =
                issue.severity == schema::Severity::Error;
            ++(is_error ? errors : warnings);
            json::Value entry = json::Value::makeObject();
            entry.set("severity", json::Value(is_error
                                                  ? "error"
                                                  : "warning"));
            entry.set("location", json::Value(issue.location));
            entry.set("message", json::Value(issue.message));
            list.append(std::move(entry));
        }
        json::Value out = json::Value::makeObject();
        out.set("schema", json::Value("parchmintd-validate-v1"));
        out.set("valid", json::Value(errors == 0));
        out.set("errors",
                json::Value(static_cast<int64_t>(errors)));
        out.set("warnings",
                json::Value(static_cast<int64_t>(warnings)));
        out.set("issues", std::move(list));
        return compactJson(out);
    }

    if (endpoint == "dilute") {
        sim::DilutionSpec spec = [&] {
            obs::reqtrace::ScopedStage stage("validate");
            return sim::parseDilutionSpec(document);
        }();
        token.throwIfCancelled("dilute");
        sim::DilutionPlan plan = [&] {
            obs::reqtrace::ScopedStage stage("dilute");
            return sim::synthesizeDilution(spec);
        }();
        json::Value farey = json::Value::makeObject();
        farey.set("numerator",
                  json::Value(static_cast<int64_t>(
                      plan.fareyNumerator)));
        farey.set("denominator",
                  json::Value(static_cast<int64_t>(
                      plan.fareyDenominator)));
        json::Value out = json::Value::makeObject();
        out.set("schema", json::Value("parchmintd-dilute-v1"));
        out.set("target", json::Value(spec.target));
        out.set("tolerance", json::Value(spec.tolerance));
        out.set("achieved", json::Value(plan.achieved));
        out.set("error", json::Value(plan.error));
        out.set("depth", json::Value(static_cast<int64_t>(
                             plan.depth)));
        out.set("numerator",
                json::Value(
                    static_cast<int64_t>(plan.numerator)));
        out.set("reagent_units",
                json::Value(
                    static_cast<int64_t>(plan.reagentUnits)));
        out.set("buffer_units",
                json::Value(
                    static_cast<int64_t>(plan.bufferUnits)));
        out.set("farey", std::move(farey));
        out.set("netlist", toJson(plan.netlist));
        return compactJson(out);
    }

    if (endpoint == "generate") {
        // Pure function of the body (like dilute): the spec plus an
        // optional "index" member the spec parser itself ignores.
        gen::GenSpec spec = [&] {
            obs::reqtrace::ScopedStage stage("validate");
            return gen::parseGenSpec(document);
        }();
        size_t index = 0;
        if (const json::Value *member = document.find("index")) {
            if (!member->isInteger() || member->asInteger() < 0)
                fatal("\"index\" must be a non-negative integer");
            index = static_cast<size_t>(member->asInteger());
        }
        if (index >= spec.count)
            fatal("\"index\" (" + std::to_string(index) +
                  ") must be below the spec count (" +
                  std::to_string(spec.count) + ")");
        token.throwIfCancelled("generate");
        Device device = [&] {
            obs::reqtrace::ScopedStage stage("generate");
            return gen::generateNetlist(spec, index);
        }();
        json::Value netlist = toJson(device);
        std::string canonical = canonicalJsonText(netlist);
        json::Value out = json::Value::makeObject();
        out.set("schema", json::Value("parchmintd-generate-v1"));
        out.set("name", json::Value(device.name()));
        out.set("family",
                json::Value(gen::familyName(spec.family)));
        out.set("seed",
                json::Value(static_cast<int64_t>(spec.seed)));
        out.set("index",
                json::Value(static_cast<int64_t>(index)));
        out.set("count",
                json::Value(static_cast<int64_t>(spec.count)));
        out.set("components",
                json::Value(static_cast<int64_t>(
                    device.components().size())));
        out.set("connections",
                json::Value(static_cast<int64_t>(
                    device.connections().size())));
        out.set("hash", json::Value(gen::corpusHashHex(
                            gen::corpusHash(canonical))));
        if (spec.emitMint)
            out.set("mint", json::Value(gen::generateMintText(
                                spec, index)));
        out.set("netlist", std::move(netlist));
        return compactJson(out);
    }

    if (endpoint == "characterize") {
        Device device = [&] {
            obs::reqtrace::ScopedStage stage("validate");
            return fromJson(document);
        }();
        token.throwIfCancelled("characterize");
        obs::reqtrace::ScopedStage stage("characterize");
        analysis::NetlistStats stats =
            analysis::computeNetlistStats(device);
        json::Value out = json::Value::makeObject();
        out.set("schema",
                json::Value("parchmintd-characterize-v1"));
        out.set("stats", analysis::statsToJson(stats));
        return compactJson(out);
    }

    // place / route / mix / schedule share the front of the
    // pipeline. The annealer derives its RNG stream from the seed
    // and the device name, so the result is a pure function of
    // (document, seed) — the property the result cache and the
    // byte-identity guarantee both lean on. The continuous-flow
    // endpoints solve over the *routed* netlist, so routed channel
    // lengths (not nominal fallbacks) drive their physics.
    bool flow_endpoint =
        endpoint == "mix" || endpoint == "schedule";
    FlowRequest flow_request;
    Device device = [&] {
        obs::reqtrace::ScopedStage stage("validate");
        if (flow_endpoint) {
            flow_request = parseFlowRequest(document);
            return fromJson(*flow_request.netlist);
        }
        return fromJson(document);
    }();
    token.throwIfCancelled(endpoint);
    place::AnnealingOptions annealing;
    annealing.seed = seed;
    place::AnnealingPlacer placer(annealing);
    place::Placement placement = [&] {
        obs::reqtrace::ScopedStage stage("place");
        return placer.place(device);
    }();
    token.throwIfCancelled(endpoint);

    if (endpoint == "place") {
        const place::PlacementCost &cost = placer.lastCost();
        placement.writeTo(device);
        json::Value cost_json = json::Value::makeObject();
        cost_json.set("hpwl", json::Value(cost.hpwl));
        cost_json.set("overlapArea",
                      json::Value(cost.overlapArea));
        cost_json.set("boundingArea",
                      json::Value(cost.boundingArea));
        json::Value out = json::Value::makeObject();
        out.set("schema", json::Value("parchmintd-place-v1"));
        out.set("seed", json::Value(static_cast<int64_t>(seed)));
        out.set("cost", std::move(cost_json));
        out.set("netlist", toJson(device));
        return compactJson(out);
    }

    route::RouteResult routed = [&] {
        obs::reqtrace::ScopedStage stage("route");
        return route::routeDevice(device, placement);
    }();
    token.throwIfCancelled("route");
    placement.writeTo(device);

    if (endpoint == "mix") {
        sim::MixingOptions mixing;
        mixing.inletPressurePa = flow_request.pressurePa;
        sim::MixingResult result = [&] {
            obs::reqtrace::ScopedStage stage("mix");
            return sim::solveMixing(device, flow_request.inlets,
                                    mixing);
        }();
        json::Value outlets = json::Value::makeArray();
        for (const sim::OutletProfile &profile :
             result.outlets) {
            json::Value entry = json::Value::makeObject();
            entry.set("port", json::Value(profile.portId));
            entry.set("concentration",
                      json::Value(profile.concentration));
            entry.set("outflow_nl_s",
                      json::Value(profile.outflow * 1e12));
            outlets.append(std::move(entry));
        }
        json::Value out = json::Value::makeObject();
        out.set("schema", json::Value("parchmintd-mix-v1"));
        out.set("seed", json::Value(static_cast<int64_t>(seed)));
        out.set("quality", json::Value(result.mixingQuality));
        out.set("mean_concentration",
                json::Value(result.meanConcentration));
        out.set("inlets", json::Value(static_cast<int64_t>(
                              result.inlets)));
        out.set("nodes", json::Value(static_cast<int64_t>(
                             result.nodes)));
        out.set("floating",
                json::Value(
                    static_cast<int64_t>(result.floating)));
        out.set("outlets", std::move(outlets));
        return compactJson(out);
    }

    if (endpoint == "schedule") {
        sim::ScheduleOptions scheduling;
        scheduling.concurrency = flow_request.concurrency;
        sim::ScheduleResult result = [&] {
            obs::reqtrace::ScopedStage stage("schedule");
            return sim::scheduleFlows(device, scheduling);
        }();
        json::Value ops = json::Value::makeArray();
        for (const sim::TransportOp &op : result.ops) {
            json::Value entry = json::Value::makeObject();
            entry.set("connection",
                      json::Value(op.connectionId));
            entry.set("sink", json::Value(static_cast<int64_t>(
                                  op.sinkIndex)));
            entry.set("start", json::Value(op.start));
            entry.set("end", json::Value(op.end));
            entry.set("duration", json::Value(op.duration));
            entry.set("stored", json::Value(op.stored));
            ops.append(std::move(entry));
        }
        json::Value out = json::Value::makeObject();
        out.set("schema",
                json::Value("parchmintd-schedule-v1"));
        out.set("seed", json::Value(static_cast<int64_t>(seed)));
        out.set("concurrency",
                json::Value(static_cast<int64_t>(
                    scheduling.concurrency)));
        out.set("makespan", json::Value(result.makespan));
        out.set("stored_ops",
                json::Value(
                    static_cast<int64_t>(result.storedOps)));
        out.set("storage_channels",
                json::Value(static_cast<int64_t>(
                    result.storageChannels)));
        out.set("utilization",
                json::Value(result.utilization));
        out.set("ops", std::move(ops));
        return compactJson(out);
    }

    json::Value routing = json::Value::makeObject();
    routing.set("routedNets",
                json::Value(
                    static_cast<int64_t>(routed.routedCount)));
    routing.set("totalNets",
                json::Value(
                    static_cast<int64_t>(routed.nets.size())));
    routing.set("length", json::Value(routed.totalLength));
    routing.set("violations",
                json::Value(static_cast<int64_t>(
                    routed.totalViolations)));
    json::Value out = json::Value::makeObject();
    out.set("schema", json::Value("parchmintd-route-v1"));
    out.set("seed", json::Value(static_cast<int64_t>(seed)));
    out.set("routing", std::move(routing));
    out.set("netlist", toJson(device));
    return compactJson(out);
}

HttpResponse
NetlistService::handleSuiteIndex()
{
    json::Value list = json::Value::makeArray();
    for (const suite::BenchmarkInfo &info :
         suite::standardSuite()) {
        json::Value entry = json::Value::makeObject();
        entry.set("name", json::Value(info.name));
        entry.set("category",
                  json::Value(info.category ==
                                      suite::Category::Recreated
                                  ? "recreated"
                                  : "synthetic"));
        entry.set("description",
                  json::Value(info.description));
        list.append(std::move(entry));
    }
    json::Value out = json::Value::makeObject();
    out.set("schema", json::Value("parchmintd-suite-v1"));
    out.set("benchmarks", std::move(list));
    return jsonResponse(200, compactJson(out));
}

HttpResponse
NetlistService::handleSuiteNetlist(const std::string &name)
{
    std::string key = "suite:" + name;
    if (std::shared_ptr<const std::string> hit =
            resultCache_.find(key)) {
        return jsonResponse(200, *hit);
    }
    try {
        Device device = suite::buildBenchmark(name);
        std::string body = compactJson(toJson(device));
        resultCache_.insert(
            key, std::make_shared<const std::string>(body),
            body.size());
        return jsonResponse(200, std::move(body));
    } catch (const UserError &error) {
        return errorResponse(404, error.what());
    }
}

std::shared_ptr<const gen::CorpusManifest>
NetlistService::corpusManifest()
{
    if (options_.corpusDir.empty())
        fatal("no corpus mounted (start the daemon with a corpus "
              "directory)");
    std::lock_guard<std::mutex> lock(corpusMutex_);
    if (!corpusManifest_) {
        corpusManifest_ =
            std::make_shared<const gen::CorpusManifest>(
                gen::readCorpusManifest(options_.corpusDir));
    }
    return corpusManifest_;
}

HttpResponse
NetlistService::handleCorpusIndex()
{
    std::shared_ptr<const gen::CorpusManifest> manifest;
    try {
        manifest = corpusManifest();
    } catch (const UserError &error) {
        return errorResponse(404, error.what());
    }
    json::Value entries = json::Value::makeArray();
    for (const gen::CorpusEntry &entry : manifest->entries) {
        json::Value item = json::Value::makeObject();
        item.set("index",
                 json::Value(static_cast<int64_t>(entry.index)));
        item.set("name", json::Value(entry.name));
        item.set("file", json::Value(entry.file));
        item.set("hash", json::Value(entry.hash));
        item.set("bytes",
                 json::Value(static_cast<int64_t>(entry.bytes)));
        entries.append(std::move(item));
    }
    json::Value out = json::Value::makeObject();
    out.set("schema", json::Value("parchmintd-corpus-v1"));
    out.set("manifest_version",
            json::Value(manifest->manifestVersion));
    out.set("spec", gen::specToJson(manifest->spec));
    out.set("count", json::Value(static_cast<int64_t>(
                         manifest->entries.size())));
    out.set("entries", std::move(entries));
    return jsonResponse(200, compactJson(out));
}

HttpResponse
NetlistService::handleCorpusNetlist(const std::string &ref)
{
    std::shared_ptr<const gen::CorpusManifest> manifest;
    try {
        manifest = corpusManifest();
    } catch (const UserError &error) {
        return errorResponse(404, error.what());
    }
    // Resolve by file name or bare hash16 against the manifest
    // (never the raw path), so requests cannot escape the corpus
    // directory.
    const gen::CorpusEntry *found = nullptr;
    for (const gen::CorpusEntry &entry : manifest->entries) {
        if (entry.file == ref || entry.hash == ref) {
            found = &entry;
            break;
        }
    }
    if (found == nullptr) {
        return errorResponse(404, "no corpus entry \"" + ref +
                                      "\"");
    }
    // Read from disk per request: bounded memory regardless of
    // corpus size, LRU-bounded reuse via the result cache.
    std::string key = "corpus:" + found->hash;
    if (std::shared_ptr<const std::string> hit =
            resultCache_.find(key)) {
        obs::reqtrace::noteCache("result");
        return jsonResponse(200, *hit);
    }
    std::string text;
    if (!gen::readCorpusEntry(options_.corpusDir, *found, text)) {
        return errorResponse(502, "corpus entry \"" + ref +
                                      "\" is missing or corrupt "
                                      "on disk");
    }
    resultCache_.insert(
        key, std::make_shared<const std::string>(text),
        text.size());
    return jsonResponse(200, std::move(text));
}

HttpResponse
NetlistService::handleStatsz()
{
    obs::Registry &registry = obs::registry();

    json::Value counters = json::Value::makeObject();
    for (const auto &[name, value] :
         registry.countersSnapshot()) {
        counters.set(name, json::Value(value));
    }
    json::Value gauges = json::Value::makeObject();
    for (const auto &[name, value] : registry.gaugesSnapshot())
        gauges.set(name, json::Value(value));
    json::Value histograms = json::Value::makeObject();
    for (const auto &[name, summary] :
         registry.histogramsSnapshot()) {
        histograms.set(name, obs::summaryToJson(summary));
    }
    json::Value metrics = json::Value::makeObject();
    metrics.set("counters", std::move(counters));
    metrics.set("gauges", std::move(gauges));
    metrics.set("histograms", std::move(histograms));

    json::Value cache = json::Value::makeObject();
    cache.set("document", cacheStatsJson(docCache_.stats()));
    cache.set("result", cacheStatsJson(resultCache_.stats()));

    json::Value admission = json::Value::makeObject();
    admission.set("maxInflight",
                  json::Value(static_cast<int64_t>(
                      admission_.maxInflight())));
    admission.set("inflight",
                  json::Value(static_cast<int64_t>(
                      admission_.inflight())));
    admission.set("admitted",
                  json::Value(static_cast<int64_t>(
                      admission_.admitted())));
    admission.set("rejected",
                  json::Value(static_cast<int64_t>(
                      admission_.rejected())));

    json::Value out = json::Value::makeObject();
    out.set("schema", json::Value("parchmintd-statsz-v1"));
    out.set("manifest_version",
            json::Value(obs::manifestVersion()));
    out.set("system", obs::systemJson());
    out.set("metrics", std::move(metrics));
    out.set("cache", std::move(cache));
    out.set("admission", std::move(admission));
    return jsonResponse(200, compactJson(out));
}

HttpResponse
NetlistService::handleMetricsz()
{
    HttpResponse response;
    response.status = 200;
    response.setHeader("Content-Type",
                       "text/plain; version=0.0.4");
    response.body = obs::renderPrometheusText(obs::registry());
    return response;
}

HttpResponse
NetlistService::handleTracez()
{
    return jsonResponse(
        200, compactJson(captureJson(capture_,
                                     "parchmintd-tracez-v1")));
}

HttpResponse
NetlistService::handleLogz()
{
    // Flight-recorder events as JSONL, closed by a summary line
    // carrying the logger's written/dropped counters — the line CI
    // asserts dropped == 0 against.
    std::string body = obs::flight::toJsonLines();
    obs::LogStats stats = obs::logger().stats();
    body += "{\"type\":\"logz_summary\",\"flight_events\":";
    body += std::to_string(obs::flight::recorded());
    body += ",\"log_written\":";
    body += std::to_string(stats.written);
    body += ",\"log_dropped\":";
    body += std::to_string(stats.dropped);
    body += "}\n";

    HttpResponse response;
    response.status = 200;
    response.setHeader("Content-Type", "text/plain");
    response.body = std::move(body);
    return response;
}

HttpResponse
NetlistService::handleProfilez(const HttpRequest &request)
{
    int64_t seconds = 2;
    std::string param = request.queryParam("seconds");
    if (!param.empty()) {
        char *end = nullptr;
        long long parsed = std::strtoll(param.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || parsed <= 0)
            return errorResponse(
                400, "bad seconds parameter \"" + param + "\"");
        seconds = parsed;
    }
    seconds = std::min<int64_t>(seconds, 30);

    if (!obs::prof::start())
        return errorResponse(
            409, "a profile capture is already running");
    PM_LOG_INFO("svc.profilez", "profile started",
                {{"seconds", std::to_string(seconds)}});

    // Hold this worker for the capture window. sleep_for can wake
    // early on EINTR while SIGPROF is firing, so loop on the
    // deadline instead of trusting one sleep.
    obs::Clock::time_point deadline =
        obs::Clock::now() + std::chrono::seconds(seconds);
    while (obs::Clock::now() < deadline) {
        std::this_thread::sleep_for(std::min(
            std::chrono::duration_cast<
                std::chrono::milliseconds>(
                deadline - obs::Clock::now()),
            std::chrono::milliseconds(50)));
    }

    std::string folded = obs::prof::stop();
    PM_LOG_INFO(
        "svc.profilez", "profile finished",
        {{"samples",
          std::to_string(obs::prof::sampleCount())},
         {"dropped",
          std::to_string(obs::prof::droppedSamples())}});

    HttpResponse response;
    response.status = 200;
    response.setHeader("Content-Type", "text/plain");
    response.setHeader(
        "X-Parchmint-Profile-Samples",
        std::to_string(obs::prof::sampleCount()));
    response.body = std::move(folded);
    return response;
}

} // namespace parchmint::svc
