#include "svc/service.hh"

#include <cstdlib>

#include "analysis/netlist_stats.hh"
#include "analysis/stats_json.hh"
#include "common/error.hh"
#include "common/strings.hh"
#include "core/deserialize.hh"
#include "core/serialize.hh"
#include "exec/thread_pool.hh"
#include "json/parse.hh"
#include "json/write.hh"
#include "obs/clock.hh"
#include "obs/env.hh"
#include "obs/manifest.hh"
#include "obs/obs.hh"
#include "obs/prometheus.hh"
#include "obs/report.hh"
#include "place/annealing_placer.hh"
#include "place/cost.hh"
#include "route/router.hh"
#include "schema/rules.hh"
#include "suite/suite.hh"

namespace parchmint::svc
{

namespace
{

/** Compact JSON text of a value (the wire format). */
std::string
compactJson(const json::Value &value)
{
    json::WriteOptions options;
    options.pretty = false;
    return json::write(value, options);
}

HttpResponse
jsonResponse(int status, std::string body)
{
    HttpResponse response;
    response.status = status;
    response.setHeader("Content-Type", "application/json");
    response.body = std::move(body);
    return response;
}

HttpResponse
errorResponse(int status, const std::string &message)
{
    json::Value body = json::Value::makeObject();
    body.set("error", json::Value(message));
    return jsonResponse(status, compactJson(body));
}

/** Short metric label for a request path ("other" if unknown). */
std::string
endpointLabel(const std::string &path)
{
    if (path == "/v1/validate")
        return "validate";
    if (path == "/v1/characterize")
        return "characterize";
    if (path == "/v1/place")
        return "place";
    if (path == "/v1/route")
        return "route";
    if (path == "/v1/suite" || startsWith(path, "/v1/suite/"))
        return "suite";
    if (path == "/healthz")
        return "healthz";
    if (path == "/statsz")
        return "statsz";
    if (path == "/metricsz")
        return "metricsz";
    return "other";
}

json::Value
cacheStatsJson(const CacheStats &stats)
{
    json::Value out = json::Value::makeObject();
    out.set("hits", json::Value(static_cast<int64_t>(stats.hits)));
    out.set("misses",
            json::Value(static_cast<int64_t>(stats.misses)));
    out.set("insertions",
            json::Value(static_cast<int64_t>(stats.insertions)));
    out.set("evictions",
            json::Value(static_cast<int64_t>(stats.evictions)));
    out.set("oversized",
            json::Value(static_cast<int64_t>(stats.oversized)));
    out.set("entries",
            json::Value(static_cast<int64_t>(stats.entries)));
    out.set("bytes",
            json::Value(static_cast<int64_t>(stats.bytes)));
    return out;
}

} // namespace

NetlistService::NetlistService(ServiceOptions options)
    : options_(options),
      admission_(options.maxInflight == 0
                     ? 2 * exec::ThreadPool::hardwareThreads()
                     : options.maxInflight),
      docCache_(options.cacheShards, options.cacheBytes / 4),
      resultCache_(options.cacheShards,
                   options.cacheBytes - options.cacheBytes / 4)
{
}

CacheStats
NetlistService::documentCacheStats() const
{
    return docCache_.stats();
}

CacheStats
NetlistService::resultCacheStats() const
{
    return resultCache_.stats();
}

HttpResponse
NetlistService::handle(const HttpRequest &request)
{
    return handle(request, exec::CancelToken::withDeadline(
                               options_.requestDeadline));
}

HttpResponse
NetlistService::handle(const HttpRequest &request,
                       const exec::CancelToken &token)
{
    obs::Stopwatch watch;
    std::string label = endpointLabel(request.path());
    HttpResponse response;
    try {
        response = dispatch(request, token);
    } catch (const exec::Cancelled &cancelled) {
        response = errorResponse(503, cancelled.what());
    } catch (const json::ParseError &error) {
        response = errorResponse(
            400, std::string("invalid JSON: ") + error.what());
    } catch (const UserError &error) {
        response = errorResponse(422, error.what());
    } catch (const std::exception &error) {
        response = errorResponse(500, error.what());
    }

    // Request/response accounting is unconditional (not gated on
    // the obs switch): /statsz must answer on a daemon launched
    // without --report. Counters are bounded; the per-endpoint
    // latency histograms record samples and stay behind the
    // switch.
    obs::Registry &registry = obs::registry();
    registry.add("svc.requests", 1);
    registry.add("svc.requests." + label, 1);
    int status_class = response.status / 100;
    registry.add("svc.responses." +
                     std::to_string(status_class) + "xx",
                 1);
    if (response.status == 429)
        registry.add("svc.responses.429", 1);
    if (response.status == 503)
        registry.add("svc.responses.503", 1);
    PM_OBS_HIST("svc." + label + ".ms", watch.elapsedMs());
    return response;
}

HttpResponse
NetlistService::dispatch(const HttpRequest &request,
                         const exec::CancelToken &token)
{
    const std::string path = request.path();

    if (path == "/healthz") {
        json::Value body = json::Value::makeObject();
        body.set("status", json::Value("ok"));
        return jsonResponse(200, compactJson(body));
    }
    if (path == "/statsz") {
        if (request.method != "GET") {
            HttpResponse response =
                errorResponse(405, "use GET " + path);
            response.setHeader("Allow", "GET");
            return response;
        }
        return handleStatsz();
    }
    if (path == "/metricsz") {
        if (request.method != "GET") {
            HttpResponse response =
                errorResponse(405, "use GET " + path);
            response.setHeader("Allow", "GET");
            return response;
        }
        return handleMetricsz();
    }
    if (path == "/v1/suite" || startsWith(path, "/v1/suite/")) {
        if (request.method != "GET") {
            HttpResponse response =
                errorResponse(405, "use GET " + path);
            response.setHeader("Allow", "GET");
            return response;
        }
        if (path == "/v1/suite")
            return handleSuiteIndex();
        return handleSuiteNetlist(
            path.substr(std::string("/v1/suite/").size()));
    }
    if (path == "/v1/validate" || path == "/v1/characterize" ||
        path == "/v1/place" || path == "/v1/route") {
        if (request.method != "POST") {
            HttpResponse response =
                errorResponse(405, "use POST " + path);
            response.setHeader("Allow", "POST");
            return response;
        }
        return handlePipeline(endpointLabel(path), request,
                              token);
    }
    return errorResponse(404,
                         "no such endpoint \"" + path + "\"");
}

std::shared_ptr<const NetlistService::ParsedDoc>
NetlistService::parseBody(const std::string &body)
{
    std::string raw_key = "doc:" + hashHex(contentHash(body));
    if (std::shared_ptr<const ParsedDoc> hit =
            docCache_.find(raw_key)) {
        return hit;
    }
    json::Value parsed = json::parse(body);
    std::string canonical = canonicalJsonText(parsed);
    auto doc = std::make_shared<ParsedDoc>();
    doc->canonKey = hashHex(contentHash(canonical));
    doc->document = std::move(parsed);
    // Cost proxy for the in-memory document: JSON value trees run
    // a small multiple of their text size.
    docCache_.insert(raw_key, doc, 2 * body.size());
    return doc;
}

HttpResponse
NetlistService::handlePipeline(const std::string &endpoint,
                               const HttpRequest &request,
                               const exec::CancelToken &token)
{
    AdmissionController::Ticket ticket = admission_.tryAdmit();
    obs::registry().setGauge(
        "svc.inflight",
        static_cast<double>(admission_.inflight()));
    if (!ticket) {
        HttpResponse response = errorResponse(
            429, "server at capacity (" +
                     std::to_string(admission_.maxInflight()) +
                     " requests in flight); retry shortly");
        response.setHeader("Retry-After", "1");
        return response;
    }
    if (request.body.empty())
        return errorResponse(400, "empty request body");

    token.throwIfCancelled("admit " + endpoint);
    std::shared_ptr<const ParsedDoc> doc =
        parseBody(request.body);
    token.throwIfCancelled("parse " + endpoint);

    bool seeded = endpoint == "place" || endpoint == "route";
    uint64_t seed = options_.seed;
    if (seeded) {
        std::string param = request.queryParam("seed");
        if (!param.empty())
            seed = std::strtoull(param.c_str(), nullptr, 10);
    }

    std::string key = endpoint;
    key += ':';
    key += doc->canonKey;
    if (seeded) {
        key += ':';
        key += std::to_string(seed);
    }
    if (std::shared_ptr<const std::string> hit =
            resultCache_.find(key)) {
        return jsonResponse(200, *hit);
    }

    std::string body =
        computeResult(endpoint, doc->document, seed, token);
    resultCache_.insert(
        key, std::make_shared<const std::string>(body),
        body.size());
    return jsonResponse(200, std::move(body));
}

std::string
NetlistService::computeResult(const std::string &endpoint,
                              const json::Value &document,
                              uint64_t seed,
                              const exec::CancelToken &token)
{
    PM_OBS_SPAN(endpoint, "svc");

    if (endpoint == "validate") {
        std::vector<schema::Issue> issues =
            schema::validateDocument(document);
        size_t errors = 0;
        size_t warnings = 0;
        json::Value list = json::Value::makeArray();
        for (const schema::Issue &issue : issues) {
            bool is_error =
                issue.severity == schema::Severity::Error;
            ++(is_error ? errors : warnings);
            json::Value entry = json::Value::makeObject();
            entry.set("severity", json::Value(is_error
                                                  ? "error"
                                                  : "warning"));
            entry.set("location", json::Value(issue.location));
            entry.set("message", json::Value(issue.message));
            list.append(std::move(entry));
        }
        json::Value out = json::Value::makeObject();
        out.set("schema", json::Value("parchmintd-validate-v1"));
        out.set("valid", json::Value(errors == 0));
        out.set("errors",
                json::Value(static_cast<int64_t>(errors)));
        out.set("warnings",
                json::Value(static_cast<int64_t>(warnings)));
        out.set("issues", std::move(list));
        return compactJson(out);
    }

    if (endpoint == "characterize") {
        Device device = fromJson(document);
        token.throwIfCancelled("characterize");
        analysis::NetlistStats stats =
            analysis::computeNetlistStats(device);
        json::Value out = json::Value::makeObject();
        out.set("schema",
                json::Value("parchmintd-characterize-v1"));
        out.set("stats", analysis::statsToJson(stats));
        return compactJson(out);
    }

    // place / route share the front of the pipeline. The annealer
    // derives its RNG stream from the seed and the device name, so
    // the result is a pure function of (document, seed) — the
    // property the result cache and the byte-identity guarantee
    // both lean on.
    Device device = fromJson(document);
    token.throwIfCancelled(endpoint);
    place::AnnealingOptions annealing;
    annealing.seed = seed;
    place::AnnealingPlacer placer(annealing);
    place::Placement placement = placer.place(device);
    token.throwIfCancelled(endpoint);

    if (endpoint == "place") {
        const place::PlacementCost &cost = placer.lastCost();
        placement.writeTo(device);
        json::Value cost_json = json::Value::makeObject();
        cost_json.set("hpwl", json::Value(cost.hpwl));
        cost_json.set("overlapArea",
                      json::Value(cost.overlapArea));
        cost_json.set("boundingArea",
                      json::Value(cost.boundingArea));
        json::Value out = json::Value::makeObject();
        out.set("schema", json::Value("parchmintd-place-v1"));
        out.set("seed", json::Value(static_cast<int64_t>(seed)));
        out.set("cost", std::move(cost_json));
        out.set("netlist", toJson(device));
        return compactJson(out);
    }

    route::RouteResult routed =
        route::routeDevice(device, placement);
    token.throwIfCancelled("route");
    placement.writeTo(device);
    json::Value routing = json::Value::makeObject();
    routing.set("routedNets",
                json::Value(
                    static_cast<int64_t>(routed.routedCount)));
    routing.set("totalNets",
                json::Value(
                    static_cast<int64_t>(routed.nets.size())));
    routing.set("length", json::Value(routed.totalLength));
    routing.set("violations",
                json::Value(static_cast<int64_t>(
                    routed.totalViolations)));
    json::Value out = json::Value::makeObject();
    out.set("schema", json::Value("parchmintd-route-v1"));
    out.set("seed", json::Value(static_cast<int64_t>(seed)));
    out.set("routing", std::move(routing));
    out.set("netlist", toJson(device));
    return compactJson(out);
}

HttpResponse
NetlistService::handleSuiteIndex()
{
    json::Value list = json::Value::makeArray();
    for (const suite::BenchmarkInfo &info :
         suite::standardSuite()) {
        json::Value entry = json::Value::makeObject();
        entry.set("name", json::Value(info.name));
        entry.set("category",
                  json::Value(info.category ==
                                      suite::Category::Recreated
                                  ? "recreated"
                                  : "synthetic"));
        entry.set("description",
                  json::Value(info.description));
        list.append(std::move(entry));
    }
    json::Value out = json::Value::makeObject();
    out.set("schema", json::Value("parchmintd-suite-v1"));
    out.set("benchmarks", std::move(list));
    return jsonResponse(200, compactJson(out));
}

HttpResponse
NetlistService::handleSuiteNetlist(const std::string &name)
{
    std::string key = "suite:" + name;
    if (std::shared_ptr<const std::string> hit =
            resultCache_.find(key)) {
        return jsonResponse(200, *hit);
    }
    try {
        Device device = suite::buildBenchmark(name);
        std::string body = compactJson(toJson(device));
        resultCache_.insert(
            key, std::make_shared<const std::string>(body),
            body.size());
        return jsonResponse(200, std::move(body));
    } catch (const UserError &error) {
        return errorResponse(404, error.what());
    }
}

HttpResponse
NetlistService::handleStatsz()
{
    obs::Registry &registry = obs::registry();

    json::Value counters = json::Value::makeObject();
    for (const auto &[name, value] :
         registry.countersSnapshot()) {
        counters.set(name, json::Value(value));
    }
    json::Value gauges = json::Value::makeObject();
    for (const auto &[name, value] : registry.gaugesSnapshot())
        gauges.set(name, json::Value(value));
    json::Value histograms = json::Value::makeObject();
    for (const auto &[name, summary] :
         registry.histogramsSnapshot()) {
        histograms.set(name, obs::summaryToJson(summary));
    }
    json::Value metrics = json::Value::makeObject();
    metrics.set("counters", std::move(counters));
    metrics.set("gauges", std::move(gauges));
    metrics.set("histograms", std::move(histograms));

    json::Value cache = json::Value::makeObject();
    cache.set("document", cacheStatsJson(docCache_.stats()));
    cache.set("result", cacheStatsJson(resultCache_.stats()));

    json::Value admission = json::Value::makeObject();
    admission.set("maxInflight",
                  json::Value(static_cast<int64_t>(
                      admission_.maxInflight())));
    admission.set("inflight",
                  json::Value(static_cast<int64_t>(
                      admission_.inflight())));
    admission.set("admitted",
                  json::Value(static_cast<int64_t>(
                      admission_.admitted())));
    admission.set("rejected",
                  json::Value(static_cast<int64_t>(
                      admission_.rejected())));

    json::Value out = json::Value::makeObject();
    out.set("schema", json::Value("parchmintd-statsz-v1"));
    out.set("manifest_version",
            json::Value(obs::manifestVersion()));
    out.set("system", obs::systemJson());
    out.set("metrics", std::move(metrics));
    out.set("cache", std::move(cache));
    out.set("admission", std::move(admission));
    return jsonResponse(200, compactJson(out));
}

HttpResponse
NetlistService::handleMetricsz()
{
    HttpResponse response;
    response.status = 200;
    response.setHeader("Content-Type",
                       "text/plain; version=0.0.4");
    response.body = obs::renderPrometheusText(obs::registry());
    return response;
}

} // namespace parchmint::svc
