/**
 * @file
 * Readiness reactor: edge-triggered epoll on Linux, poll()
 * elsewhere, behind one tiny interface.
 *
 * The server's event loop (svc/server.hh) needs exactly three
 * things from the kernel: "watch this fd for readability", "stop
 * watching it", and "wake me when any watched fd turns readable".
 * The original loop rebuilt a pollfd array from scratch on every
 * iteration — O(connections) of copying per wakeup, which is the
 * part of poll() that stops scaling once thousands of keep-alive
 * connections sit idle. The epoll backend registers each fd once
 * (EPOLLIN | EPOLLET) and pays O(ready) per wakeup instead.
 *
 * Edge-triggered registration is safe under the server's dispatch
 * discipline: an fd is removed from the reactor before it is
 * handed to a worker, the worker pumps the socket until EAGAIN,
 * and the fd is re-added afterwards — and EPOLL_CTL_ADD reports an
 * initial readiness edge for an fd that is already readable, so
 * bytes that arrived while the fd was off the reactor are never
 * lost. Persistent fds (the listener, the wake pipe) are likewise
 * drained to EAGAIN by their owner on every event, which is all
 * edge-triggering asks of them.
 *
 * The poll() fallback keeps the same interface and the same
 * remove-before-dispatch discipline on platforms without epoll, so
 * server code is identical either way; only wait() complexity
 * differs. backendName() says which one was compiled in (surfaced
 * at /statsz).
 *
 * Not thread-safe: add/remove/wait belong to the owning event
 * thread. This mirrors the server's ownership model — only the
 * event thread ever touches the watch set.
 */

#ifndef PARCHMINT_SVC_REACTOR_HH
#define PARCHMINT_SVC_REACTOR_HH

#include <cstddef>
#include <vector>

#if defined(__linux__)
#define PARCHMINT_REACTOR_EPOLL 1
#else
#define PARCHMINT_REACTOR_EPOLL 0
#endif

namespace parchmint::svc
{

/** See file comment. */
class Reactor
{
  public:
    /** @throws InternalError when the kernel facility fails. */
    Reactor();
    ~Reactor();

    Reactor(const Reactor &) = delete;
    Reactor &operator=(const Reactor &) = delete;

    /** Watch @p fd for readability (edge-triggered on epoll). */
    void add(int fd);

    /**
     * Stop watching @p fd. Must be called before the fd is handed
     * to another thread or closed by one; harmless for an fd that
     * is not watched.
     */
    void remove(int fd);

    /**
     * Block until a watched fd is readable, @p timeout_ms elapses
     * (-1 = forever), or a signal arrives. Appends ready fds to
     * @p ready (cleared first). @return the ready count, 0 on
     * timeout, or -1 with errno set (EINTR passes through so the
     * caller can re-check its stop flag).
     */
    int wait(int timeout_ms, std::vector<int> &ready);

    /** Watched fd count. */
    size_t size() const;

    /** "epoll" or "poll" — which backend was compiled in. */
    static const char *backendName();

  private:
#if PARCHMINT_REACTOR_EPOLL
    int epollFd_ = -1;
    size_t watched_ = 0;
#else
    /** Watched fds; rebuilt into a pollfd array per wait(). */
    std::vector<int> watched_;
#endif
};

} // namespace parchmint::svc

#endif // PARCHMINT_SVC_REACTOR_HH
