#include "svc/reactor.hh"

#include <cerrno>
#include <cstring>

#include "common/error.hh"

#if PARCHMINT_REACTOR_EPOLL
#include <sys/epoll.h>
#include <unistd.h>
#else
#include <algorithm>
#include <poll.h>
#endif

namespace parchmint::svc
{

#if PARCHMINT_REACTOR_EPOLL

Reactor::Reactor()
{
    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0)
        panic(std::string("epoll_create1 failed: ") +
              std::strerror(errno));
}

Reactor::~Reactor()
{
    if (epollFd_ >= 0)
        ::close(epollFd_);
}

void
Reactor::add(int fd)
{
    epoll_event event{};
    event.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    event.data.fd = fd;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &event) != 0)
        panic(std::string("epoll_ctl(ADD) failed: ") +
              std::strerror(errno));
    ++watched_;
}

void
Reactor::remove(int fd)
{
    if (::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr) == 0)
        --watched_;
}

int
Reactor::wait(int timeout_ms, std::vector<int> &ready)
{
    ready.clear();
    epoll_event events[256];
    int n = ::epoll_wait(epollFd_, events, 256, timeout_ms);
    if (n < 0)
        return -1;
    ready.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        ready.push_back(events[i].data.fd);
    return n;
}

size_t
Reactor::size() const
{
    return watched_;
}

const char *
Reactor::backendName()
{
    return "epoll";
}

#else // poll() fallback

Reactor::Reactor() = default;

Reactor::~Reactor() = default;

void
Reactor::add(int fd)
{
    watched_.push_back(fd);
}

void
Reactor::remove(int fd)
{
    auto it = std::find(watched_.begin(), watched_.end(), fd);
    if (it != watched_.end())
        watched_.erase(it);
}

int
Reactor::wait(int timeout_ms, std::vector<int> &ready)
{
    ready.clear();
    std::vector<pollfd> fds;
    fds.reserve(watched_.size());
    for (int fd : watched_)
        fds.push_back({fd, POLLIN, 0});
    int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n <= 0)
        return n;
    for (const pollfd &entry : fds) {
        if (entry.revents != 0)
            ready.push_back(entry.fd);
    }
    return static_cast<int>(ready.size());
}

size_t
Reactor::size() const
{
    return watched_.size();
}

const char *
Reactor::backendName()
{
    return "poll";
}

#endif

} // namespace parchmint::svc
