/**
 * @file
 * Admission control: bound the work in flight, shed the rest.
 *
 * A service that accepts every request degrades for everyone at
 * once; a service that bounds its concurrency degrades only for
 * the overflow, and tells it when to come back. The controller is
 * a counting gate: each heavy request tries to take a slot before
 * any pipeline work starts, and a request that finds the gate full
 * is rejected immediately — the server maps that to
 * `429 Too Many Requests` with a `Retry-After` hint, the standard
 * backpressure contract load generators and clients understand.
 *
 * Slots are RAII tickets so an exception anywhere in a handler
 * releases its slot; the live count doubles as the queue-depth
 * style gauge exported through /statsz.
 */

#ifndef PARCHMINT_SVC_ADMISSION_HH
#define PARCHMINT_SVC_ADMISSION_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace parchmint::svc
{

/** See file comment. */
class AdmissionController
{
  public:
    /** RAII slot; falsy when admission was refused. */
    class Ticket
    {
      public:
        Ticket() = default;

        explicit Ticket(AdmissionController *controller)
            : controller_(controller)
        {
        }

        Ticket(Ticket &&other) noexcept
            : controller_(
                  std::exchange(other.controller_, nullptr))
        {
        }

        Ticket &
        operator=(Ticket &&other) noexcept
        {
            if (this != &other) {
                release();
                controller_ =
                    std::exchange(other.controller_, nullptr);
            }
            return *this;
        }

        Ticket(const Ticket &) = delete;
        Ticket &operator=(const Ticket &) = delete;

        ~Ticket() { release(); }

        /** True when a slot was granted. */
        explicit operator bool() const
        {
            return controller_ != nullptr;
        }

        void
        release()
        {
            if (controller_ != nullptr) {
                controller_->release();
                controller_ = nullptr;
            }
        }

      private:
        AdmissionController *controller_ = nullptr;
    };

    /** @param max_inflight Slot count; clamped to >= 1. */
    explicit AdmissionController(size_t max_inflight)
        : maxInflight_(max_inflight == 0 ? 1 : max_inflight)
    {
    }

    /**
     * Try to take a slot. Never blocks: overload is answered with
     * rejection, not queueing — the thread pool's run queue is the
     * only queue, and it is bounded by the connection count.
     */
    Ticket
    tryAdmit()
    {
        size_t now =
            inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (now > maxInflight_) {
            inflight_.fetch_sub(1, std::memory_order_acq_rel);
            rejected_.fetch_add(1, std::memory_order_relaxed);
            return Ticket();
        }
        admitted_.fetch_add(1, std::memory_order_relaxed);
        return Ticket(this);
    }

    size_t
    inflight() const
    {
        return inflight_.load(std::memory_order_relaxed);
    }

    size_t maxInflight() const { return maxInflight_; }

    uint64_t
    admitted() const
    {
        return admitted_.load(std::memory_order_relaxed);
    }

    uint64_t
    rejected() const
    {
        return rejected_.load(std::memory_order_relaxed);
    }

  private:
    friend class Ticket;

    void
    release()
    {
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
    }

    size_t maxInflight_;
    std::atomic<size_t> inflight_{0};
    std::atomic<uint64_t> admitted_{0};
    std::atomic<uint64_t> rejected_{0};
};

} // namespace parchmint::svc

#endif // PARCHMINT_SVC_ADMISSION_HH
