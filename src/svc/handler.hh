/**
 * @file
 * The request-handling seam between the HTTP server and whatever
 * answers requests.
 *
 * HttpServer owns sockets, parsing, and threading; it knows nothing
 * about endpoints. Anything that maps a complete HttpRequest to an
 * HttpResponse — the netlist service (svc/service.hh), the cluster
 * router (cluster/router.hh), a test stub — implements this
 * interface and is served by the same reactor loop. handle() is
 * called concurrently from every server worker, so implementations
 * must be thread-safe.
 */

#ifndef PARCHMINT_SVC_HANDLER_HH
#define PARCHMINT_SVC_HANDLER_HH

#include "svc/http.hh"

namespace parchmint::svc
{

/** See file comment. */
class HttpHandler
{
  public:
    virtual ~HttpHandler() = default;

    /** Answer one request (thread-safe). */
    virtual HttpResponse handle(const HttpRequest &request) = 0;
};

} // namespace parchmint::svc

#endif // PARCHMINT_SVC_HANDLER_HH
