/**
 * @file
 * Per-backend health tracking: a small circuit-breaker state
 * machine fed by probe results and live request outcomes.
 *
 * States and transitions (per backend):
 *
 *   Healthy  --(failures reach threshold)-->  Ejected
 *   Ejected  --(cooldown elapses)----------->  HalfOpen
 *   HalfOpen --(one success)--------------->  Healthy
 *   HalfOpen --(one failure)--------------->  Ejected (cooldown
 *                                              restarts)
 *
 * Healthy backends receive traffic. Ejected backends receive none
 * — the router skips them in the ring's preference order — so a
 * dead backend costs one connect timeout per failure threshold,
 * not one per request. HalfOpen is the re-admission gate: after
 * the cooldown, admits() returns true again and the *next* outcome
 * decides — a success restores Healthy, a failure re-ejects and
 * restarts the cooldown. The periodic prober (cluster/router.hh)
 * guarantees the next outcome arrives within a probe interval even
 * when no client traffic would touch the backend.
 *
 * Failures only count consecutively: any success zeroes the streak,
 * so a lossy-but-alive backend is not ejected by sporadic errors.
 * Only *transport* failures (connect/send/recv) count; an HTTP
 * error status is a healthy backend answering.
 *
 * Time is injected (a steady_clock::time_point parameter on every
 * transition) so the health_test drives the cooldown with a fake
 * clock instead of sleeping.
 *
 * Thread-safe; every method takes the tracker mutex.
 */

#ifndef PARCHMINT_CLUSTER_HEALTH_HH
#define PARCHMINT_CLUSTER_HEALTH_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace parchmint::cluster
{

/** One backend's breaker state. */
enum class HealthState
{
    Healthy,
    Ejected,
    HalfOpen,
};

/** The name, for logs and /statsz. */
const char *healthStateName(HealthState state);

/** A point-in-time view of one backend. */
struct BackendHealth
{
    HealthState state = HealthState::Healthy;
    /** Consecutive transport failures. */
    uint32_t consecutiveFailures = 0;
    uint64_t successes = 0;
    uint64_t failures = 0;
    /** Ejections over the backend's lifetime. */
    uint64_t ejections = 0;
};

/** See file comment. */
class HealthTracker
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * @param backends The tracked backend names; all start
     *        Healthy.
     * @param failureThreshold Consecutive failures that eject
     *        (clamped to >= 1).
     * @param cooldown Ejected -> HalfOpen delay.
     */
    HealthTracker(std::vector<std::string> backends,
                  uint32_t failureThreshold,
                  Clock::duration cooldown);

    /**
     * Record a success (probe or live request) at @p now.
     * Unknown backends are ignored.
     */
    void recordSuccess(const std::string &backend,
                       Clock::time_point now);

    /** Record a transport failure at @p now. */
    void recordFailure(const std::string &backend,
                       Clock::time_point now);

    /**
     * May @p backend receive traffic at @p now? True for Healthy
     * and HalfOpen (the trial request); an Ejected backend whose
     * cooldown has elapsed is promoted to HalfOpen first, so
     * admits() is the transition edge. False for unknown backends.
     */
    bool admits(const std::string &backend, Clock::time_point now);

    /** Current view of one backend (default-constructed when
     * unknown). */
    BackendHealth view(const std::string &backend) const;

    /** Current view of every backend, keyed by name. */
    std::map<std::string, BackendHealth> viewAll() const;

  private:
    struct Entry
    {
        BackendHealth health;
        Clock::time_point ejectedAt{};
    };

    uint32_t failureThreshold_;
    Clock::duration cooldown_;
    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

} // namespace parchmint::cluster

#endif // PARCHMINT_CLUSTER_HEALTH_HH
