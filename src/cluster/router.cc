#include "cluster/router.hh"

#include <algorithm>
#include <chrono>

#include "common/error.hh"
#include "common/strings.hh"
#include "json/value.hh"
#include "json/write.hh"
#include "obs/obs.hh"
#include "svc/cache.hh"
#include "svc/service.hh"

namespace parchmint::cluster
{

namespace
{

std::string
compactJson(const json::Value &value)
{
    json::WriteOptions options;
    options.pretty = false;
    return json::write(value, options);
}

svc::HttpResponse
jsonResponse(int status, std::string body)
{
    svc::HttpResponse response;
    response.status = status;
    response.setHeader("Content-Type", "application/json");
    response.body = std::move(body);
    return response;
}

svc::HttpResponse
errorResponse(int status, const std::string &message)
{
    json::Value body = json::Value::makeObject();
    body.set("error", json::Value(message));
    return jsonResponse(status, compactJson(body));
}

/** True for headers the serializers own or the router rewrites. */
bool
isHopByHop(const std::string &name)
{
    std::string lower = toLower(name);
    return lower == "content-length" || lower == "connection" ||
           lower == svc::kTraceHeader;
}

void
stripHopByHop(
    std::vector<std::pair<std::string, std::string>> &headers)
{
    headers.erase(
        std::remove_if(headers.begin(), headers.end(),
                       [](const auto &header) {
                           return isHopByHop(header.first);
                       }),
        headers.end());
}

/** The capture's endpoint label for a request. */
std::string
endpointLabel(const svc::HttpRequest &request)
{
    if (request.method == "GET") {
        std::string path = request.path();
        if (path == "/healthz")
            return "healthz";
        if (path == "/statsz")
            return "statsz";
        if (path == "/tracez")
            return "tracez";
    }
    return "forward";
}

} // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      ring_(options_.backends, options_.vnodes),
      health_(ring_.backends(), options_.failureThreshold,
              options_.cooldown),
      pool_(options_.maxIdlePerBackend, options_.requestTimeout)
{
    if (ring_.empty())
        fatal("router needs at least one backend");
    // Surface a malformed address at construction, not on the
    // first forwarded request.
    for (const std::string &backend : ring_.backends())
        parseBackendAddress(backend);
}

Router::~Router()
{
    stopProbing();
}

void
Router::probeOnce()
{
    svc::HttpRequest probe;
    probe.method = "GET";
    probe.target = "/healthz";
    for (const std::string &backend : ring_.backends()) {
        auto now = HealthTracker::Clock::now();
        try {
            svc::HttpResponse response =
                forwardOnce(backend, probe);
            if (response.status == 200) {
                health_.recordSuccess(backend, now);
            } else {
                health_.recordFailure(backend, now);
                obs::registry().add("router.probe.failures", 1);
            }
        } catch (const Error &) {
            health_.recordFailure(backend, now);
            obs::registry().add("router.probe.failures", 1);
        }
    }
}

void
Router::startProbing()
{
    if (!prober_)
        prober_ = std::make_unique<exec::PeriodicTask>(
            options_.probeInterval, [this] { probeOnce(); });
    prober_->start();
}

void
Router::stopProbing()
{
    if (prober_)
        prober_->stop();
}

std::map<std::string, uint64_t>
Router::forwardedCounts() const
{
    std::lock_guard<std::mutex> lock(countsMutex_);
    return forwarded_;
}

svc::HttpResponse
Router::handle(const svc::HttpRequest &request)
{
    uint64_t ordinal =
        traceOrdinal_.fetch_add(1, std::memory_order_relaxed);
    svc::TraceResolution trace = svc::resolveTraceHeader(
        request, options_.seed, ordinal);
    obs::reqtrace::ScopedTraceContext context(trace.id);

    obs::reqtrace::RequestRecord record;
    record.traceId = trace.id;
    record.method = request.method;
    record.path = request.path();
    record.endpoint = endpointLabel(request);
    record.startUs = capture_.nowUs();
    auto started = std::chrono::steady_clock::now();

    svc::HttpResponse response;
    {
        obs::reqtrace::ActiveRequest active(&record);
        if (!trace.ok) {
            response = errorResponse(400, trace.error);
        } else {
            try {
                response = dispatch(request, trace.id);
            } catch (const InternalError &e) {
                response = errorResponse(500, e.what());
            } catch (const Error &e) {
                response = errorResponse(502, e.what());
            }
        }
    }

    response.setHeader(svc::kTraceHeaderEcho, trace.id);
    record.status = response.status;
    record.durationUs =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    capture_.record(std::move(record));
    obs::registry().add("router.requests", 1);
    obs::registry().add("router.responses." +
                            std::to_string(response.status),
                        1);
    return response;
}

svc::HttpResponse
Router::dispatch(const svc::HttpRequest &request,
                 const std::string &traceId)
{
    if (request.method == "GET") {
        std::string path = request.path();
        if (path == "/healthz")
            return handleHealthz();
        if (path == "/statsz")
            return handleStatsz();
        if (path == "/tracez")
            return handleTracez();
    }
    if (request.method != "GET" && request.method != "POST")
        return errorResponse(405, "method \"" + request.method +
                                      "\" not supported");
    return forwardRequest(request, traceId);
}

svc::HttpResponse
Router::handleHealthz()
{
    json::Value out = json::Value::makeObject();
    out.set("status", json::Value("ok"));
    out.set("role", json::Value("router"));
    out.set("backends",
            json::Value(static_cast<int64_t>(
                ring_.backends().size())));
    return jsonResponse(200, compactJson(out));
}

svc::HttpResponse
Router::handleStatsz()
{
    std::map<std::string, BackendHealth> healthView =
        health_.viewAll();
    std::map<std::string, uint64_t> forwarded;
    std::map<std::string, uint64_t> transportFailures;
    {
        std::lock_guard<std::mutex> lock(countsMutex_);
        forwarded = forwarded_;
        transportFailures = transportFailures_;
    }

    json::Value backends = json::Value::makeObject();
    for (const std::string &name : ring_.backends()) {
        const BackendHealth &health = healthView[name];
        json::Value entry = json::Value::makeObject();
        entry.set("state",
                  json::Value(healthStateName(health.state)));
        entry.set("forwarded",
                  json::Value(static_cast<int64_t>(
                      forwarded[name])));
        entry.set("transport_failures",
                  json::Value(static_cast<int64_t>(
                      transportFailures[name])));
        entry.set("successes",
                  json::Value(static_cast<int64_t>(
                      health.successes)));
        entry.set("failures",
                  json::Value(static_cast<int64_t>(
                      health.failures)));
        entry.set("consecutive_failures",
                  json::Value(static_cast<int64_t>(
                      health.consecutiveFailures)));
        entry.set("ejections",
                  json::Value(static_cast<int64_t>(
                      health.ejections)));
        backends.set(name, std::move(entry));
    }

    json::Value ring = json::Value::makeObject();
    ring.set("vnodes", json::Value(static_cast<int64_t>(
                           ring_.vnodes())));
    ring.set("backends",
             json::Value(static_cast<int64_t>(
                 ring_.backends().size())));

    CoalesceStats coalesce = coalescer_.stats();
    json::Value coalesceOut = json::Value::makeObject();
    coalesceOut.set("leaders",
                    json::Value(static_cast<int64_t>(
                        coalesce.leaders)));
    coalesceOut.set("followers",
                    json::Value(static_cast<int64_t>(
                        coalesce.followers)));
    coalesceOut.set("inflight",
                    json::Value(static_cast<int64_t>(
                        coalescer_.inflight())));

    PoolStats pool = pool_.stats();
    json::Value poolOut = json::Value::makeObject();
    poolOut.set("reused", json::Value(static_cast<int64_t>(
                              pool.reused)));
    poolOut.set("created", json::Value(static_cast<int64_t>(
                               pool.created)));
    poolOut.set("discarded",
                json::Value(static_cast<int64_t>(
                    pool.discarded)));
    poolOut.set("idle", json::Value(static_cast<int64_t>(
                            pool.idle)));

    json::Value out = json::Value::makeObject();
    out.set("schema", json::Value("parchmint-router-stats-v1"));
    out.set("seed", json::Value(static_cast<int64_t>(
                        options_.seed)));
    out.set("completed",
            json::Value(static_cast<int64_t>(
                capture_.completed())));
    out.set("backends", std::move(backends));
    out.set("ring", std::move(ring));
    out.set("coalesce", std::move(coalesceOut));
    out.set("pool", std::move(poolOut));
    return jsonResponse(200, compactJson(out));
}

svc::HttpResponse
Router::handleTracez()
{
    return jsonResponse(
        200, compactJson(svc::captureJson(
                 capture_, "parchmint-router-tracez-v1")));
}

svc::HttpResponse
Router::forwardRequest(const svc::HttpRequest &request,
                       const std::string &traceId)
{
    svc::HttpRequest forward;
    forward.method = request.method;
    forward.target = request.target;
    forward.body = request.body;
    forward.headers = request.headers;
    stripHopByHop(forward.headers);
    forward.headers.emplace_back(svc::kTraceHeader, traceId);

    if (request.method != "POST") {
        uint64_t key = svc::contentHash(request.target);
        return forwardWithFailover(forward, key);
    }

    // Shard by the same raw-body hash the backend's document
    // cache is keyed by: affinity makes the cluster's caches
    // partition instead of duplicate.
    uint64_t key = svc::contentHash(request.body);
    const std::string *clientTrace =
        request.findHeader(svc::kTraceHeader);
    std::string flightKey =
        request.method + "|" + request.target + "|" +
        (clientTrace ? *clientTrace : std::string()) + "|" +
        svc::hashHex(key);
    std::shared_ptr<const svc::HttpResponse> shared =
        coalescer_.run(flightKey, [&] {
            return forwardWithFailover(forward, key);
        });
    return *shared;
}

svc::HttpResponse
Router::forwardWithFailover(const svc::HttpRequest &request,
                            uint64_t key)
{
    std::vector<std::string> order = ring_.preferenceOrder(key);
    auto now = HealthTracker::Clock::now();
    std::vector<std::string> candidates;
    for (const std::string &backend : order) {
        if (health_.admits(backend, now))
            candidates.push_back(backend);
    }
    // Health refusing everyone means our information is stale or
    // the cluster is down; trying beats a reflexive 502.
    if (candidates.empty())
        candidates = order;

    std::string lastError = "no backends configured";
    for (const std::string &backend : candidates) {
        try {
            svc::HttpResponse response =
                forwardOnce(backend, request);
            health_.recordSuccess(backend,
                                  HealthTracker::Clock::now());
            {
                std::lock_guard<std::mutex> lock(countsMutex_);
                ++forwarded_[backend];
            }
            return response;
        } catch (const Error &e) {
            health_.recordFailure(backend,
                                  HealthTracker::Clock::now());
            {
                std::lock_guard<std::mutex> lock(countsMutex_);
                ++transportFailures_[backend];
            }
            obs::registry().add("router.failover", 1);
            lastError = e.what();
        }
    }
    return errorResponse(502, "no backend available: " +
                                  lastError);
}

svc::HttpResponse
Router::forwardOnce(const std::string &backend,
                    const svc::HttpRequest &request)
{
    ClientPool::Lease lease = pool_.lease(backend);
    svc::HttpResponse response;
    try {
        response = lease->request(request);
    } catch (...) {
        // Never re-pool a connection that just failed.
        lease.discard();
        throw;
    }
    stripHopByHop(response.headers);
    return response;
}

} // namespace parchmint::cluster
