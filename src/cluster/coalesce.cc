#include "cluster/coalesce.hh"

#include "common/error.hh"

namespace parchmint::cluster
{

std::shared_ptr<const svc::HttpResponse>
Coalescer::run(const std::string &key,
               const std::function<svc::HttpResponse()> &compute)
{
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = flights_.find(key);
        if (it != flights_.end()) {
            flight = it->second;
        } else {
            flight = std::make_shared<Flight>();
            flights_.emplace(key, flight);
            leader = true;
        }
    }

    if (!leader) {
        followers_.fetch_add(1, std::memory_order_relaxed);
        std::unique_lock<std::mutex> lock(flight->mutex);
        flight->cv.wait(lock, [&] { return flight->done; });
        if (!flight->error.empty())
            fatal(flight->error);
        return flight->response;
    }

    leaders_.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<const svc::HttpResponse> response;
    std::string error;
    try {
        response = std::make_shared<const svc::HttpResponse>(
            compute());
    } catch (const Error &e) {
        error = e.what();
    }

    // Unpublish *before* waking followers: see file comment.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        flights_.erase(key);
    }
    {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->response = response;
        flight->error = error;
        flight->done = true;
    }
    flight->cv.notify_all();

    if (!error.empty())
        fatal(error);
    return response;
}

CoalesceStats
Coalescer::stats() const
{
    CoalesceStats out;
    out.leaders = leaders_.load(std::memory_order_relaxed);
    out.followers = followers_.load(std::memory_order_relaxed);
    return out;
}

size_t
Coalescer::inflight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return flights_.size();
}

} // namespace parchmint::cluster
