/**
 * @file
 * In-flight request coalescing ("single-flight") for the router.
 *
 * Benchmark sweeps and CI storms post the *same* netlist from many
 * clients at once. The backend's content-addressed cache already
 * dedupes sequential repeats, but K identical requests in flight
 * simultaneously all miss (the first has not finished computing),
 * so the cluster does K placements of one netlist. The coalescer
 * folds them: the first arrival for a key becomes the *leader* and
 * actually calls the backend; the other K-1 become *followers* and
 * block on the leader's flight; everyone receives the same
 * shared_ptr-to-const response.
 *
 * Keying: the router keys a flight by endpoint target + trace
 * header + content hash of the body, so only byte-equivalent work
 * coalesces and every follower's response (including the echoed
 * trace ID) is byte-identical to what a solo request would get.
 *
 * Publication order matters: the leader *erases the flight from
 * the table before* filling the result and waking followers. A
 * request arriving after the erase starts a fresh flight — it can
 * never join a completed one — so a flight's result is written
 * exactly once and no reader ever observes a half-published state.
 * Followers hold a shared_ptr to the flight itself, so the erase
 * does not free it under them.
 *
 * Failures propagate: a leader whose backend call throws publishes
 * the error message instead of a response, and every follower of
 * that flight throws UserError with it. Followers never retry —
 * their caller (the router) owns retry policy.
 */

#ifndef PARCHMINT_CLUSTER_COALESCE_HH
#define PARCHMINT_CLUSTER_COALESCE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "svc/http.hh"

namespace parchmint::cluster
{

/** Point-in-time coalescer counters. */
struct CoalesceStats
{
    /** Flights led (actual backend calls). */
    uint64_t leaders = 0;
    /** Requests folded into another's flight. */
    uint64_t followers = 0;
};

/** See file comment. */
class Coalescer
{
  public:
    /**
     * Run @p compute for @p key, unless an identical flight is
     * already in progress — then wait for it and share its result.
     * @return The (shared) response; never null.
     * @throws UserError when the flight's leader threw — followers
     *         get the leader's error message.
     */
    std::shared_ptr<const svc::HttpResponse>
    run(const std::string &key,
        const std::function<svc::HttpResponse()> &compute);

    CoalesceStats stats() const;

    /** Flights currently in progress. */
    size_t inflight() const;

  private:
    struct Flight
    {
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
        std::shared_ptr<const svc::HttpResponse> response;
        /** Non-empty when the leader failed. */
        std::string error;
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<Flight>>
        flights_;
    std::atomic<uint64_t> leaders_{0};
    std::atomic<uint64_t> followers_{0};
};

} // namespace parchmint::cluster

#endif // PARCHMINT_CLUSTER_COALESCE_HH
