/**
 * @file
 * Consistent-hash ring over the cluster's backends.
 *
 * Why consistent hashing: the daemon's two-level cache
 * (svc/cache.hh) is content-addressed, so the shard a request
 * lands on decides whether it hits. Round-robin across N backends
 * stores every hot netlist N times and hits each copy 1/N as
 * often; hashing the request's content onto a stable ring sends a
 * given netlist to the *same* backend every time, so the cluster's
 * aggregate cache behaves like one N-times-larger cache.
 *
 * Construction: each backend contributes `vnodes` points on a
 * 64-bit ring, point i at deriveSeed(i, backend-name) — the same
 * FNV-1a + splitmix64 mix as svc::contentHash, so ring placement
 * inherits its golden-tested dispersion. A key (already a 64-bit
 * content hash) is owned by the first point clockwise from it.
 * Virtual nodes smooth the load: with ~128 points per backend the
 * largest share stays within a few percent of 1/N.
 *
 * The consistency property — and the reason this beats
 * `hash % N` — is that adding or removing one backend only remaps
 * the keys that backend's points owned, ~1/N of the key space;
 * every other key keeps its backend and therefore its warm cache.
 * The ring_test asserts both the stability and the remap bound.
 *
 * preferenceOrder() walks the ring clockwise collecting each
 * *distinct* backend in first-encounter order: element 0 is the
 * owner, element 1 is where the key goes if the owner is down, and
 * so on. The router retries down this list so failover traffic for
 * one dead backend spreads across the survivors instead of piling
 * onto a single designated successor.
 *
 * Immutable after construction and therefore freely shared across
 * threads; membership changes build a new ring (the router swaps a
 * shared_ptr).
 */

#ifndef PARCHMINT_CLUSTER_RING_HH
#define PARCHMINT_CLUSTER_RING_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace parchmint::cluster
{

/** See file comment. */
class HashRing
{
  public:
    /**
     * @param backends Backend names (e.g. "127.0.0.1:8081");
     *        order does not matter, duplicates are collapsed.
     * @param vnodes Ring points per backend (clamped to >= 1).
     */
    explicit HashRing(std::vector<std::string> backends,
                      size_t vnodes = 128);

    /** The distinct backend names, sorted. */
    const std::vector<std::string> &backends() const
    {
        return backends_;
    }

    /** True when the ring has no backends (lookups panic). */
    bool empty() const { return backends_.empty(); }

    /**
     * The backend owning @p key.
     * @throws InternalError on an empty ring.
     */
    const std::string &owner(uint64_t key) const;

    /**
     * Every distinct backend in failover order for @p key: the
     * owner first, then each next-encountered backend clockwise.
     * @throws InternalError on an empty ring.
     */
    std::vector<std::string>
    preferenceOrder(uint64_t key) const;

    /** Ring points per backend actually used. */
    size_t vnodes() const { return vnodes_; }

  private:
    struct Point
    {
        uint64_t position;
        /** Index into backends_. */
        uint32_t backend;
    };

    /** Index of the point owning @p key. */
    size_t ownerPoint(uint64_t key) const;

    std::vector<std::string> backends_;
    size_t vnodes_;
    /** Sorted by position. */
    std::vector<Point> points_;
};

} // namespace parchmint::cluster

#endif // PARCHMINT_CLUSTER_RING_HH
