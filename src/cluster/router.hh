/**
 * @file
 * The cluster router: one svc::HttpHandler that fronts N
 * parchmintd backends.
 *
 * Request path (POST pipeline endpoints):
 *
 *   1. Resolve the trace ID exactly as the daemon does
 *      (svc/service.hh resolveTraceHeader) — same header, same 400
 *      contract, same deterministic minting.
 *   2. Shard: the ring key is svc::contentHash of the raw body —
 *      the same hash the backend's *document* cache is keyed by —
 *      so a given netlist always lands on the backend whose cache
 *      already holds it (cluster/ring.hh).
 *   3. Coalesce: identical in-flight requests (same method,
 *      target, client trace value, and body hash) fold into one
 *      backend call; followers share the leader's response body
 *      byte for byte (cluster/coalesce.hh). Each response still
 *      carries the *requester's own* trace echo — the router
 *      rewrites the X-Parchmint-Trace header per request.
 *   4. Forward with failover: walk the ring's preference order,
 *      skipping backends the health tracker refuses
 *      (cluster/health.hh); transport failures advance to the next
 *      backend and feed the tracker. When health refuses *every*
 *      backend the router tries the full order anyway — serving a
 *      maybe-dead backend beats a certain 502. Only when every
 *      attempt fails does the client see 502.
 *
 * GET requests shard by target instead of body (there is none) and
 * skip coalescing — suite/corpus lookups are cache-cheap on the
 * backend. The router answers /healthz, /statsz
 * (parchmint-router-stats-v1: per-backend health + forwarding
 * counters, ring, coalescer, pool), and /tracez
 * (parchmint-router-tracez-v1) locally.
 *
 * Forwarded messages are sanitized in both directions:
 * content-length and connection headers are hop-by-hop (the
 * serializers re-derive them; forwarding the originals would
 * produce conflicting duplicates, a 400 at the parser), and the
 * backend's trace echo is replaced with the router's.
 *
 * Health probing: probeOnce() GETs every backend's /healthz and
 * feeds the tracker; startProbing() runs it on a periodic
 * background thread (exec/periodic.hh) so an ejected backend is
 * re-admitted within one probe interval of coming back, even with
 * no client traffic. The prober stops before the router is torn
 * down (stop is in the destructor), which is the drain story: the
 * owning HttpServer drains in-flight requests first, then the
 * router destructs.
 *
 * Thread-safe: handle() runs concurrently on every server worker.
 */

#ifndef PARCHMINT_CLUSTER_ROUTER_HH
#define PARCHMINT_CLUSTER_ROUTER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/coalesce.hh"
#include "cluster/health.hh"
#include "cluster/pool.hh"
#include "cluster/ring.hh"
#include "exec/periodic.hh"
#include "obs/reqtrace.hh"
#include "svc/handler.hh"
#include "svc/http.hh"

namespace parchmint::cluster
{

/** Router knobs. */
struct RouterOptions
{
    /** Backend addresses ("host:port"); at least one required. */
    std::vector<std::string> backends;
    /** Ring points per backend. */
    size_t vnodes = 128;
    /** Consecutive transport failures that eject a backend. */
    uint32_t failureThreshold = 3;
    /** Ejected -> HalfOpen cooldown. */
    std::chrono::milliseconds cooldown{2000};
    /** Background /healthz probe period (startProbing()). */
    std::chrono::milliseconds probeInterval{1000};
    /** Per-request receive timeout on backend connections. */
    std::chrono::milliseconds requestTimeout{30000};
    /** Idle pooled connections kept per backend. */
    size_t maxIdlePerBackend = 8;
    /** Seed for minted trace IDs (same contract as the daemon). */
    uint64_t seed = 1;
};

/** See file comment. */
class Router : public svc::HttpHandler
{
  public:
    /** @throws UserError when options name no backends or a
     * malformed address. */
    explicit Router(RouterOptions options);

    /** Stops the prober. */
    ~Router() override;

    /** Dispatch one request (thread-safe). */
    svc::HttpResponse
    handle(const svc::HttpRequest &request) override;

    /** Probe every backend's /healthz once, synchronously. */
    void probeOnce();

    /** Start the periodic background prober; idempotent. */
    void startProbing();

    /** Stop and join the prober; idempotent. */
    void stopProbing();

    const RouterOptions &options() const { return options_; }
    const HashRing &ring() const { return ring_; }
    HealthTracker &health() { return health_; }
    const Coalescer &coalescer() const { return coalescer_; }
    const ClientPool &pool() const { return pool_; }
    const obs::reqtrace::RequestCapture &capture() const
    {
        return capture_;
    }

    /** Requests successfully forwarded, per backend. */
    std::map<std::string, uint64_t> forwardedCounts() const;

  private:
    svc::HttpResponse
    dispatch(const svc::HttpRequest &request,
             const std::string &traceId);
    svc::HttpResponse handleHealthz();
    svc::HttpResponse handleStatsz();
    svc::HttpResponse handleTracez();
    /** Forward (coalescing POSTs) and rewrite the trace echo. */
    svc::HttpResponse
    forwardRequest(const svc::HttpRequest &request,
                   const std::string &traceId);
    /** Walk the preference order until a backend answers. */
    svc::HttpResponse
    forwardWithFailover(const svc::HttpRequest &request,
                        uint64_t key);
    /** One attempt against one backend.
     * @throws UserError on transport failure. */
    svc::HttpResponse
    forwardOnce(const std::string &backend,
                const svc::HttpRequest &request);

    RouterOptions options_;
    HashRing ring_;
    HealthTracker health_;
    Coalescer coalescer_;
    ClientPool pool_;
    obs::reqtrace::RequestCapture capture_;
    std::atomic<uint64_t> traceOrdinal_{0};
    std::unique_ptr<exec::PeriodicTask> prober_;
    mutable std::mutex countsMutex_;
    std::map<std::string, uint64_t> forwarded_;
    std::map<std::string, uint64_t> transportFailures_;
};

} // namespace parchmint::cluster

#endif // PARCHMINT_CLUSTER_ROUTER_HH
