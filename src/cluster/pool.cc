#include "cluster/pool.hh"

#include "common/error.hh"

namespace parchmint::cluster
{

std::pair<std::string, uint16_t>
parseBackendAddress(const std::string &backend)
{
    size_t colon = backend.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == backend.size())
        fatal("backend address \"" + backend +
              "\" is not host:port");
    std::string host = backend.substr(0, colon);
    std::string port_text = backend.substr(colon + 1);
    long port = 0;
    for (char c : port_text) {
        if (c < '0' || c > '9')
            fatal("backend port \"" + port_text +
                  "\" is not a number");
        port = port * 10 + (c - '0');
        if (port > 65535)
            break;
    }
    if (port < 1 || port > 65535)
        fatal("backend port \"" + port_text +
              "\" is out of range 1..65535");
    return {std::move(host), static_cast<uint16_t>(port)};
}

ClientPool::ClientPool(size_t maxIdlePerBackend,
                       std::chrono::milliseconds requestTimeout)
    : maxIdlePerBackend_(
          maxIdlePerBackend == 0 ? 1 : maxIdlePerBackend),
      requestTimeout_(requestTimeout)
{
}

ClientPool::Lease::Lease(ClientPool *pool, std::string backend,
                         std::unique_ptr<svc::HttpClient> client)
    : pool_(pool),
      backend_(std::move(backend)),
      client_(std::move(client))
{
}

ClientPool::Lease::Lease(Lease &&other) noexcept
    : pool_(other.pool_),
      backend_(std::move(other.backend_)),
      client_(std::move(other.client_))
{
    other.pool_ = nullptr;
}

ClientPool::Lease &
ClientPool::Lease::operator=(Lease &&other) noexcept
{
    if (this != &other) {
        if (pool_ && client_)
            pool_->release(backend_, std::move(client_));
        pool_ = other.pool_;
        backend_ = std::move(other.backend_);
        client_ = std::move(other.client_);
        other.pool_ = nullptr;
    }
    return *this;
}

ClientPool::Lease::~Lease()
{
    if (pool_ && client_)
        pool_->release(backend_, std::move(client_));
}

void
ClientPool::Lease::discard()
{
    if (!client_)
        return;
    client_.reset();
    if (pool_) {
        std::lock_guard<std::mutex> lock(pool_->mutex_);
        ++pool_->discarded_;
    }
    pool_ = nullptr;
}

ClientPool::Lease
ClientPool::lease(const std::string &backend)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = idle_.find(backend);
        if (it != idle_.end() && !it->second.empty()) {
            std::unique_ptr<svc::HttpClient> client =
                std::move(it->second.back());
            it->second.pop_back();
            ++reused_;
            return Lease(this, backend, std::move(client));
        }
    }
    auto [host, port] = parseBackendAddress(backend);
    auto client =
        std::make_unique<svc::HttpClient>(std::move(host), port);
    client->setTimeout(requestTimeout_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++created_;
    }
    return Lease(this, backend, std::move(client));
}

void
ClientPool::release(const std::string &backend,
                    std::unique_ptr<svc::HttpClient> client)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::unique_ptr<svc::HttpClient>> &stack =
        idle_[backend];
    if (stack.size() < maxIdlePerBackend_)
        stack.push_back(std::move(client));
    // Else: let the client destruct (closing its socket).
}

PoolStats
ClientPool::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    PoolStats out;
    out.reused = reused_;
    out.created = created_;
    out.discarded = discarded_;
    for (const auto &[backend, stack] : idle_)
        out.idle += stack.size();
    return out;
}

} // namespace parchmint::cluster
