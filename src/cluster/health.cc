#include "cluster/health.hh"

namespace parchmint::cluster
{

const char *
healthStateName(HealthState state)
{
    switch (state) {
    case HealthState::Healthy:
        return "healthy";
    case HealthState::Ejected:
        return "ejected";
    case HealthState::HalfOpen:
        return "half_open";
    }
    return "unknown";
}

HealthTracker::HealthTracker(std::vector<std::string> backends,
                             uint32_t failureThreshold,
                             Clock::duration cooldown)
    : failureThreshold_(failureThreshold == 0 ? 1
                                              : failureThreshold),
      cooldown_(cooldown)
{
    for (std::string &backend : backends)
        entries_.emplace(std::move(backend), Entry{});
}

void
HealthTracker::recordSuccess(const std::string &backend,
                             Clock::time_point /*now*/)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(backend);
    if (it == entries_.end())
        return;
    Entry &entry = it->second;
    ++entry.health.successes;
    entry.health.consecutiveFailures = 0;
    entry.health.state = HealthState::Healthy;
}

void
HealthTracker::recordFailure(const std::string &backend,
                             Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(backend);
    if (it == entries_.end())
        return;
    Entry &entry = it->second;
    ++entry.health.failures;
    ++entry.health.consecutiveFailures;
    bool eject =
        entry.health.state == HealthState::HalfOpen ||
        (entry.health.state == HealthState::Healthy &&
         entry.health.consecutiveFailures >= failureThreshold_);
    if (eject) {
        entry.health.state = HealthState::Ejected;
        ++entry.health.ejections;
        entry.ejectedAt = now;
    } else if (entry.health.state == HealthState::Ejected) {
        // A failure while already ejected (a probe that lost the
        // HalfOpen race) restarts the cooldown.
        entry.ejectedAt = now;
    }
}

bool
HealthTracker::admits(const std::string &backend,
                      Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(backend);
    if (it == entries_.end())
        return false;
    Entry &entry = it->second;
    switch (entry.health.state) {
    case HealthState::Healthy:
    case HealthState::HalfOpen:
        return true;
    case HealthState::Ejected:
        if (now - entry.ejectedAt >= cooldown_) {
            entry.health.state = HealthState::HalfOpen;
            return true;
        }
        return false;
    }
    return false;
}

BackendHealth
HealthTracker::view(const std::string &backend) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(backend);
    return it == entries_.end() ? BackendHealth{}
                                : it->second.health;
}

std::map<std::string, BackendHealth>
HealthTracker::viewAll() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, BackendHealth> out;
    for (const auto &[name, entry] : entries_)
        out.emplace(name, entry.health);
    return out;
}

} // namespace parchmint::cluster
