#include "cluster/ring.hh"

#include <algorithm>
#include <set>

#include "common/error.hh"
#include "common/rng.hh"

namespace parchmint::cluster
{

HashRing::HashRing(std::vector<std::string> backends,
                   size_t vnodes)
    : vnodes_(vnodes == 0 ? 1 : vnodes)
{
    std::set<std::string> distinct(backends.begin(),
                                   backends.end());
    backends_.assign(distinct.begin(), distinct.end());

    points_.reserve(backends_.size() * vnodes_);
    for (uint32_t b = 0; b < backends_.size(); ++b) {
        for (size_t i = 0; i < vnodes_; ++i) {
            uint64_t position = deriveSeed(
                static_cast<uint64_t>(i), backends_[b]);
            points_.push_back(Point{position, b});
        }
    }
    std::sort(points_.begin(), points_.end(),
              [](const Point &a, const Point &b) {
                  // Backend index breaks position ties so the
                  // ring is deterministic even across a (never
                  // observed, but possible) 64-bit collision.
                  return a.position != b.position
                             ? a.position < b.position
                             : a.backend < b.backend;
              });
}

size_t
HashRing::ownerPoint(uint64_t key) const
{
    if (points_.empty())
        panic("lookup on an empty hash ring");
    // First point at or clockwise of the key; wrap to the start.
    auto it = std::lower_bound(
        points_.begin(), points_.end(), key,
        [](const Point &point, uint64_t k) {
            return point.position < k;
        });
    if (it == points_.end())
        it = points_.begin();
    return static_cast<size_t>(it - points_.begin());
}

const std::string &
HashRing::owner(uint64_t key) const
{
    return backends_[points_[ownerPoint(key)].backend];
}

std::vector<std::string>
HashRing::preferenceOrder(uint64_t key) const
{
    size_t start = ownerPoint(key);
    std::vector<std::string> order;
    order.reserve(backends_.size());
    std::vector<bool> seen(backends_.size(), false);
    for (size_t step = 0;
         step < points_.size() && order.size() < backends_.size();
         ++step) {
        uint32_t backend =
            points_[(start + step) % points_.size()].backend;
        if (!seen[backend]) {
            seen[backend] = true;
            order.push_back(backends_[backend]);
        }
    }
    return order;
}

} // namespace parchmint::cluster
