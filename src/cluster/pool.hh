/**
 * @file
 * Pooled keep-alive connections to the cluster's backends.
 *
 * Each router worker thread needs an HttpClient to some backend
 * for the duration of one forwarded request. Creating a client per
 * request would reconnect every time — the exact overhead
 * keep-alive exists to avoid — so the pool keeps idle clients per
 * backend and leases them out RAII-style:
 *
 *   { auto lease = pool.lease("127.0.0.1:8081");
 *     response = lease->request(...); }   // returned on scope exit
 *
 * A lease holds exactly one client; release returns it to its
 * backend's idle stack (LIFO, so the warmest connection — the one
 * least likely to have hit the server's idle timeout — is reused
 * first). When a request fails hard the caller discards the lease
 * instead, so a broken connection is never re-pooled:
 * lease.discard(). Idle depth per backend is capped; beyond it a
 * returned client is simply closed.
 *
 * The stale idle-timeout race (server closed an idle pooled
 * connection) is handled one layer down: svc::HttpClient
 * transparently reconnects and retries once when a *reused*
 * connection dies before yielding a response byte, so pool users
 * never see it.
 *
 * Thread-safe: lease/release take the pool mutex; the leased
 * client itself is used unlocked by exactly one worker.
 */

#ifndef PARCHMINT_CLUSTER_POOL_HH
#define PARCHMINT_CLUSTER_POOL_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "svc/client.hh"

namespace parchmint::cluster
{

/** Point-in-time pool counters. */
struct PoolStats
{
    /** Leases served from an idle pooled client. */
    uint64_t reused = 0;
    /** Leases that had to build a fresh client. */
    uint64_t created = 0;
    /** Clients dropped via Lease::discard(). */
    uint64_t discarded = 0;
    /** Idle clients currently pooled (all backends). */
    size_t idle = 0;
};

/** See file comment. */
class ClientPool
{
  public:
    /**
     * @param maxIdlePerBackend Idle clients kept per backend;
     *        returns beyond this are closed (clamped to >= 1).
     * @param requestTimeout Receive timeout stamped on every
     *        client the pool builds.
     */
    explicit ClientPool(
        size_t maxIdlePerBackend = 8,
        std::chrono::milliseconds requestTimeout =
            std::chrono::milliseconds(30000));

    /** An exclusive hold on one backend client; returns it to the
     * pool on destruction unless discarded. Movable, not
     * copyable. */
    class Lease
    {
      public:
        Lease(Lease &&other) noexcept;
        Lease &operator=(Lease &&other) noexcept;
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        ~Lease();

        svc::HttpClient &operator*() { return *client_; }
        svc::HttpClient *operator->() { return client_.get(); }

        /** Drop the client instead of re-pooling it (call after a
         * hard transport failure). */
        void discard();

      private:
        friend class ClientPool;
        Lease(ClientPool *pool, std::string backend,
              std::unique_ptr<svc::HttpClient> client);

        ClientPool *pool_ = nullptr;
        std::string backend_;
        std::unique_ptr<svc::HttpClient> client_;
    };

    /**
     * Lease a client for @p backend ("host:port"), reusing an idle
     * one when available. Connection happens lazily on first
     * request, so leasing never blocks on the network.
     * @throws UserError for a malformed backend address.
     */
    Lease lease(const std::string &backend);

    PoolStats stats() const;

  private:
    friend class Lease;
    void release(const std::string &backend,
                 std::unique_ptr<svc::HttpClient> client);

    size_t maxIdlePerBackend_;
    std::chrono::milliseconds requestTimeout_;
    mutable std::mutex mutex_;
    std::map<std::string,
             std::vector<std::unique_ptr<svc::HttpClient>>>
        idle_;
    uint64_t reused_ = 0;
    uint64_t created_ = 0;
    uint64_t discarded_ = 0;
};

/**
 * Split "host:port" into its parts.
 * @throws UserError when the port is missing or not in 1..65535.
 */
std::pair<std::string, uint16_t>
parseBackendAddress(const std::string &backend);

} // namespace parchmint::cluster

#endif // PARCHMINT_CLUSTER_POOL_HH
