/**
 * @file
 * JSON Pointer (RFC 6901).
 *
 * Validation diagnostics reference locations inside netlist documents
 * ("/components/3/ports/0/x"); JSON Pointer is the standard notation
 * for that. This header provides resolution against a Value tree and
 * pointer construction helpers.
 */

#ifndef PARCHMINT_JSON_POINTER_HH
#define PARCHMINT_JSON_POINTER_HH

#include <string>
#include <string_view>
#include <vector>

#include "json/value.hh"

namespace parchmint::json
{

/**
 * An RFC 6901 JSON Pointer: an ordered list of reference tokens.
 */
class Pointer
{
  public:
    /** The empty pointer, referring to the whole document. */
    Pointer() = default;

    /**
     * Parse the textual form, e.g. "/components/0/id". The empty
     * string is the whole-document pointer.
     *
     * @throws UserError on syntactically invalid pointers.
     */
    explicit Pointer(std::string_view text);

    /** Construct from already-unescaped tokens. */
    explicit Pointer(std::vector<std::string> tokens);

    /** @return The unescaped reference tokens, in order. */
    const std::vector<std::string> &tokens() const { return tokens_; }

    /** @return A pointer extended by one object key. */
    Pointer child(std::string_view key) const;

    /** @return A pointer extended by one array index. */
    Pointer child(size_t index) const;

    /** Render back to the escaped textual form. */
    std::string toString() const;

    /**
     * Resolve against a document.
     *
     * @return The referenced value, or nullptr when any step is
     *         missing or of the wrong kind.
     */
    const Value *resolve(const Value &root) const;

    bool operator==(const Pointer &other) const = default;

  private:
    std::vector<std::string> tokens_;
};

} // namespace parchmint::json

#endif // PARCHMINT_JSON_POINTER_HH
