#include "json/pointer.hh"

#include <cctype>

#include "common/error.hh"

namespace parchmint::json
{

namespace
{

std::string
unescapeToken(std::string_view token)
{
    std::string out;
    for (size_t i = 0; i < token.size(); ++i) {
        if (token[i] != '~') {
            out.push_back(token[i]);
            continue;
        }
        if (i + 1 >= token.size())
            fatal("JSON pointer token ends with bare '~'");
        char next = token[i + 1];
        if (next == '0')
            out.push_back('~');
        else if (next == '1')
            out.push_back('/');
        else
            fatal("invalid JSON pointer escape '~" +
                  std::string(1, next) + "'");
        ++i;
    }
    return out;
}

std::string
escapeToken(const std::string &token)
{
    std::string out;
    for (char c : token) {
        if (c == '~')
            out += "~0";
        else if (c == '/')
            out += "~1";
        else
            out.push_back(c);
    }
    return out;
}

/**
 * Parse a token as an array index: digits only, no leading zeros
 * except "0" itself, per RFC 6901.
 *
 * @return True and sets index on success.
 */
bool
parseIndex(const std::string &token, size_t &index)
{
    if (token.empty())
        return false;
    if (token.size() > 1 && token[0] == '0')
        return false;
    size_t value = 0;
    for (char c : token) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
        value = value * 10 + static_cast<size_t>(c - '0');
    }
    index = value;
    return true;
}

} // namespace

Pointer::Pointer(std::string_view text)
{
    if (text.empty())
        return;
    if (text.front() != '/')
        fatal("JSON pointer must start with '/': \"" +
              std::string(text) + "\"");
    size_t start = 1;
    while (true) {
        size_t slash = text.find('/', start);
        if (slash == std::string_view::npos) {
            tokens_.push_back(unescapeToken(text.substr(start)));
            break;
        }
        tokens_.push_back(
            unescapeToken(text.substr(start, slash - start)));
        start = slash + 1;
    }
}

Pointer::Pointer(std::vector<std::string> tokens)
    : tokens_(std::move(tokens))
{
}

Pointer
Pointer::child(std::string_view key) const
{
    std::vector<std::string> extended = tokens_;
    extended.emplace_back(key);
    return Pointer(std::move(extended));
}

Pointer
Pointer::child(size_t index) const
{
    return child(std::to_string(index));
}

std::string
Pointer::toString() const
{
    std::string out;
    for (const std::string &token : tokens_) {
        out.push_back('/');
        out += escapeToken(token);
    }
    return out;
}

const Value *
Pointer::resolve(const Value &root) const
{
    const Value *current = &root;
    for (const std::string &token : tokens_) {
        if (current->isObject()) {
            current = current->find(token);
            if (!current)
                return nullptr;
        } else if (current->isArray()) {
            size_t index = 0;
            if (!parseIndex(token, index) || index >= current->size())
                return nullptr;
            current = &current->at(index);
        } else {
            return nullptr;
        }
    }
    return current;
}

} // namespace parchmint::json
