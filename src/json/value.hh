/**
 * @file
 * JSON value model.
 *
 * parchmint carries its own JSON implementation so the interchange
 * format has no external dependencies. Value is a tagged union over
 * the seven JSON kinds (null, boolean, integer, real, string, array,
 * object). Integers and reals are kept distinct so that netlist
 * coordinates written as integers round-trip as integers, which the
 * ParchMint schema requires of spans and port positions.
 *
 * Objects preserve insertion order. ParchMint files are exchanged
 * between tools and read by humans; keeping key order stable makes
 * serialization deterministic and diffs meaningful.
 */

#ifndef PARCHMINT_JSON_VALUE_HH
#define PARCHMINT_JSON_VALUE_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace parchmint::json
{

/** The seven JSON value kinds; Integer/Real split JSON's number. */
enum class Kind
{
    Null,
    Boolean,
    Integer,
    Real,
    String,
    Array,
    Object,
};

/** Human-readable name of a Kind, e.g. "object". */
const char *kindName(Kind kind);

/**
 * A JSON document node. Values are regular: copyable, movable,
 * equality-comparable. Accessors are checked and throw UserError on
 * kind mismatches so that malformed netlists surface as clean errors
 * rather than undefined behaviour.
 */
class Value
{
  public:
    /** An object member: key plus value, in insertion order. */
    using Member = std::pair<std::string, Value>;

    /** Construct null. */
    Value();
    /** Construct a boolean. */
    Value(bool boolean);
    /** Construct an integer number. */
    Value(int64_t integer);
    /** Construct an integer number from int (convenience). */
    Value(int integer);
    /** Construct a real number. */
    Value(double real);
    /** Construct a string. */
    Value(std::string text);
    /** Construct a string from a literal. */
    Value(const char *text);

    Value(const Value &other);
    Value(Value &&other) noexcept;
    Value &operator=(const Value &other);
    Value &operator=(Value &&other) noexcept;
    ~Value();

    /** Make an empty array. */
    static Value makeArray();
    /** Make an array from elements. */
    static Value makeArray(std::vector<Value> elements);
    /** Make an empty object. */
    static Value makeObject();
    /** Make an object from members, preserving the given order. */
    static Value makeObject(std::vector<Member> members);

    /** @return This value's kind tag. */
    Kind kind() const { return kind_; }

    bool isNull() const { return kind_ == Kind::Null; }
    bool isBoolean() const { return kind_ == Kind::Boolean; }
    bool isInteger() const { return kind_ == Kind::Integer; }
    bool isReal() const { return kind_ == Kind::Real; }
    /** True for Integer or Real. */
    bool isNumber() const { return isInteger() || isReal(); }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** @return The boolean payload; throws unless isBoolean(). */
    bool asBoolean() const;
    /** @return The integer payload; throws unless isInteger(). */
    int64_t asInteger() const;
    /**
     * @return The numeric payload as double; throws unless
     * isNumber(). Integers convert exactly up to 2^53.
     */
    double asDouble() const;
    /** @return The string payload; throws unless isString(). */
    const std::string &asString() const;

    // --- Array access -------------------------------------------------

    /** Number of elements (array) or members (object); throws else. */
    size_t size() const;
    /** True when an array/object has no elements/members. */
    bool empty() const { return size() == 0; }

    /** Checked element access; throws on kind or range errors. */
    const Value &at(size_t index) const;
    Value &at(size_t index);

    /** Append an element; throws unless isArray(). */
    void append(Value element);

    /** Underlying element vector; throws unless isArray(). */
    const std::vector<Value> &elements() const;

    // --- Object access ------------------------------------------------

    /** True when the object has the given key; throws unless object. */
    bool contains(std::string_view key) const;

    /**
     * Checked member access; throws unless isObject() and the key is
     * present.
     */
    const Value &at(std::string_view key) const;
    Value &at(std::string_view key);

    /**
     * @return Pointer to the member value, or nullptr when absent.
     * Throws unless isObject().
     */
    const Value *find(std::string_view key) const;
    Value *find(std::string_view key);

    /**
     * Insert or overwrite a member. New keys append at the end,
     * preserving insertion order. Throws unless isObject().
     */
    void set(std::string_view key, Value value);

    /**
     * Remove a member if present.
     * @return True when a member was removed.
     */
    bool erase(std::string_view key);

    /** Ordered member list; throws unless isObject(). */
    const std::vector<Member> &members() const;

    /** Deep structural equality; integer 1 != real 1.0 by design. */
    bool operator==(const Value &other) const;
    bool operator!=(const Value &other) const { return !(*this == other); }

  private:
    void destroy();
    void copyFrom(const Value &other);
    void moveFrom(Value &&other) noexcept;

    [[noreturn]] void kindMismatch(const char *expected) const;

    Kind kind_;
    union
    {
        bool boolean_;
        int64_t integer_;
        double real_;
        std::string *string_;
        std::vector<Value> *array_;
        std::vector<Member> *object_;
    };
};

} // namespace parchmint::json

#endif // PARCHMINT_JSON_VALUE_HH
