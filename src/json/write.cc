#include "json/write.hh"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/error.hh"
#include "common/strings.hh"

namespace parchmint::json
{

namespace
{

void
appendEscaped(std::string &out, const std::string &text, bool ascii_only)
{
    for (size_t i = 0; i < text.size(); ++i) {
        unsigned char c = static_cast<unsigned char>(text[i]);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else if (c < 0x80 || !ascii_only) {
                out.push_back(static_cast<char>(c));
            } else {
                // Decode UTF-8 and emit \uXXXX (surrogates for
                // astral code points).
                unsigned code = 0;
                size_t extra = 0;
                if ((c & 0xe0) == 0xc0) {
                    code = c & 0x1f;
                    extra = 1;
                } else if ((c & 0xf0) == 0xe0) {
                    code = c & 0x0f;
                    extra = 2;
                } else if ((c & 0xf8) == 0xf0) {
                    code = c & 0x07;
                    extra = 3;
                } else {
                    fatal("invalid UTF-8 byte in string being "
                          "serialized");
                }
                if (i + extra >= text.size())
                    fatal("truncated UTF-8 sequence in string being "
                          "serialized");
                for (size_t k = 1; k <= extra; ++k) {
                    unsigned char cont =
                        static_cast<unsigned char>(text[i + k]);
                    if ((cont & 0xc0) != 0x80)
                        fatal("invalid UTF-8 continuation byte");
                    code = (code << 6) | (cont & 0x3f);
                }
                i += extra;
                // A 4-byte lead can encode up to 0x1FFFFF and a
                // 3-byte one can encode CESU-8 surrogate halves;
                // both would emit garbage \u escapes downstream.
                if (code > 0x10ffff ||
                    (code >= 0xd800 && code <= 0xdfff)) {
                    fatal("invalid Unicode code point in string "
                          "being serialized");
                }
                char buffer[16];
                if (code < 0x10000) {
                    std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                                  code);
                    out += buffer;
                } else {
                    unsigned reduced = code - 0x10000;
                    unsigned high = 0xd800 + (reduced >> 10);
                    unsigned low = 0xdc00 + (reduced & 0x3ff);
                    std::snprintf(buffer, sizeof(buffer),
                                  "\\u%04x\\u%04x", high, low);
                    out += buffer;
                }
            }
        }
    }
}

/** Recursive writer with indentation state. */
class Writer
{
  public:
    Writer(const WriteOptions &options)
        : options_(options)
    {
    }

    std::string
    run(const Value &value)
    {
        writeValue(value, 0);
        if (options_.pretty)
            out_.push_back('\n');
        return std::move(out_);
    }

  private:
    void
    indent(int depth)
    {
        out_.append(static_cast<size_t>(depth) *
                    static_cast<size_t>(options_.indentWidth), ' ');
    }

    void
    writeValue(const Value &value, int depth)
    {
        switch (value.kind()) {
          case Kind::Null:
            out_ += "null";
            break;
          case Kind::Boolean:
            out_ += value.asBoolean() ? "true" : "false";
            break;
          case Kind::Integer:
            out_ += std::to_string(value.asInteger());
            break;
          case Kind::Real:
            writeReal(value.asDouble());
            break;
          case Kind::String:
            out_.push_back('"');
            appendEscaped(out_, value.asString(), options_.asciiOnly);
            out_.push_back('"');
            break;
          case Kind::Array:
            writeArray(value, depth);
            break;
          case Kind::Object:
            writeObject(value, depth);
            break;
        }
    }

    void
    writeReal(double real)
    {
        if (!std::isfinite(real))
            fatal("cannot serialize non-finite number to JSON");
        std::string text = formatDouble(real);
        out_ += text;
        // JSON has no integer/real distinction on the wire; keep the
        // reader's Kind::Real by forcing a fractional marker.
        if (text.find('.') == std::string::npos &&
            text.find('e') == std::string::npos &&
            text.find('E') == std::string::npos) {
            out_ += ".0";
        }
    }

    void
    writeArray(const Value &value, int depth)
    {
        if (value.empty()) {
            out_ += "[]";
            return;
        }
        out_.push_back('[');
        bool first = true;
        for (const Value &element : value.elements()) {
            if (!first)
                out_.push_back(',');
            first = false;
            if (options_.pretty) {
                out_.push_back('\n');
                indent(depth + 1);
            }
            writeValue(element, depth + 1);
        }
        if (options_.pretty) {
            out_.push_back('\n');
            indent(depth);
        }
        out_.push_back(']');
    }

    void
    writeObject(const Value &value, int depth)
    {
        if (value.empty()) {
            out_ += "{}";
            return;
        }
        out_.push_back('{');
        bool first = true;
        for (const Value::Member &member : value.members()) {
            if (!first)
                out_.push_back(',');
            first = false;
            if (options_.pretty) {
                out_.push_back('\n');
                indent(depth + 1);
            }
            out_.push_back('"');
            appendEscaped(out_, member.first, options_.asciiOnly);
            out_ += options_.pretty ? "\": " : "\":";
            writeValue(member.second, depth + 1);
        }
        if (options_.pretty) {
            out_.push_back('\n');
            indent(depth);
        }
        out_.push_back('}');
    }

    const WriteOptions &options_;
    std::string out_;
};

} // namespace

std::string
write(const Value &value, const WriteOptions &options)
{
    Writer writer(options);
    return writer.run(value);
}

void
writeFile(const std::string &path, const Value &value,
          const WriteOptions &options)
{
    std::ofstream stream(path, std::ios::binary);
    if (!stream)
        fatal("cannot open file for writing: " + path);
    stream << write(value, options);
    if (!stream)
        fatal("failed writing file: " + path);
}

std::string
escapeString(const std::string &text, bool ascii_only)
{
    std::string out;
    appendEscaped(out, text, ascii_only);
    return out;
}

} // namespace parchmint::json
