/**
 * @file
 * JSON parser.
 *
 * A strict, recursive-descent RFC 8259 parser. Strictness matters for
 * an interchange format: netlists that one tool writes loosely and
 * another rejects defeat the point of ParchMint, so this parser
 * accepts exactly the JSON grammar (no comments, no trailing commas,
 * no bare NaN/Infinity) and reports errors with line and column.
 */

#ifndef PARCHMINT_JSON_PARSE_HH
#define PARCHMINT_JSON_PARSE_HH

#include <string>
#include <string_view>

#include "common/error.hh"
#include "json/value.hh"

namespace parchmint::json
{

/**
 * A parse failure: what went wrong and where.
 */
class ParseError : public UserError
{
  public:
    /**
     * @param message Description of the failure.
     * @param line 1-based line of the offending character.
     * @param column 1-based column of the offending character.
     */
    ParseError(const std::string &message, size_t line, size_t column);

    /** @return 1-based line number of the error. */
    size_t line() const { return line_; }
    /** @return 1-based column number of the error. */
    size_t column() const { return column_; }

  private:
    size_t line_;
    size_t column_;
};

/** Parser knobs. */
struct ParseOptions
{
    /**
     * Maximum container nesting depth, guarding against stack
     * exhaustion from adversarial inputs.
     */
    size_t maxDepth = 256;
};

/**
 * Parse a complete JSON document. Trailing content after the value
 * (other than whitespace) is an error.
 *
 * @param text The document text.
 * @param options Parser knobs.
 * @return The parsed value.
 * @throws ParseError on malformed input.
 */
Value parse(std::string_view text, const ParseOptions &options = {});

/**
 * Read and parse a JSON file.
 *
 * @param path Filesystem path.
 * @throws UserError when the file cannot be read; ParseError when the
 *         content is malformed.
 */
Value parseFile(const std::string &path,
                const ParseOptions &options = {});

} // namespace parchmint::json

#endif // PARCHMINT_JSON_PARSE_HH
