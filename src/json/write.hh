/**
 * @file
 * JSON serializer.
 *
 * Deterministic output: the same Value always serializes to the same
 * bytes, which makes netlist files diffable and lets tests compare
 * serialized documents directly. Member order is insertion order.
 */

#ifndef PARCHMINT_JSON_WRITE_HH
#define PARCHMINT_JSON_WRITE_HH

#include <string>

#include "json/value.hh"

namespace parchmint::json
{

/** Serializer knobs. */
struct WriteOptions
{
    /** Pretty-print with newlines and indentation when true. */
    bool pretty = true;
    /** Spaces per indentation level in pretty mode. */
    int indentWidth = 4;
    /** Escape non-ASCII bytes as \\uXXXX when true. */
    bool asciiOnly = false;
};

/**
 * Serialize a value to a string.
 *
 * @param value The document root.
 * @param options Formatting knobs.
 * @return The serialized text; pretty output ends with a newline.
 */
std::string write(const Value &value, const WriteOptions &options = {});

/**
 * Serialize a value to a file.
 *
 * @throws UserError when the file cannot be written.
 */
void writeFile(const std::string &path, const Value &value,
               const WriteOptions &options = {});

/** Escape a string body per JSON rules (no surrounding quotes). */
std::string escapeString(const std::string &text, bool ascii_only = false);

} // namespace parchmint::json

#endif // PARCHMINT_JSON_WRITE_HH
