#include "json/value.hh"

#include <limits>

#include "common/error.hh"

namespace parchmint::json
{

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::Null: return "null";
      case Kind::Boolean: return "boolean";
      case Kind::Integer: return "integer";
      case Kind::Real: return "real";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    panic("kindName: invalid Kind tag");
}

Value::Value()
    : kind_(Kind::Null), integer_(0)
{
}

Value::Value(bool boolean)
    : kind_(Kind::Boolean), boolean_(boolean)
{
}

Value::Value(int64_t integer)
    : kind_(Kind::Integer), integer_(integer)
{
}

Value::Value(int integer)
    : kind_(Kind::Integer), integer_(integer)
{
}

Value::Value(double real)
    : kind_(Kind::Real), real_(real)
{
}

Value::Value(std::string text)
    : kind_(Kind::String), string_(new std::string(std::move(text)))
{
}

Value::Value(const char *text)
    : kind_(Kind::String), string_(new std::string(text))
{
}

Value::Value(const Value &other)
    : kind_(Kind::Null), integer_(0)
{
    copyFrom(other);
}

Value::Value(Value &&other) noexcept
    : kind_(Kind::Null), integer_(0)
{
    moveFrom(std::move(other));
}

Value &
Value::operator=(const Value &other)
{
    if (this != &other) {
        destroy();
        copyFrom(other);
    }
    return *this;
}

Value &
Value::operator=(Value &&other) noexcept
{
    if (this != &other) {
        destroy();
        moveFrom(std::move(other));
    }
    return *this;
}

Value::~Value()
{
    destroy();
}

void
Value::destroy()
{
    switch (kind_) {
      case Kind::String:
        delete string_;
        break;
      case Kind::Array:
        delete array_;
        break;
      case Kind::Object:
        delete object_;
        break;
      default:
        break;
    }
    kind_ = Kind::Null;
    integer_ = 0;
}

void
Value::copyFrom(const Value &other)
{
    kind_ = other.kind_;
    switch (kind_) {
      case Kind::Null:
        integer_ = 0;
        break;
      case Kind::Boolean:
        boolean_ = other.boolean_;
        break;
      case Kind::Integer:
        integer_ = other.integer_;
        break;
      case Kind::Real:
        real_ = other.real_;
        break;
      case Kind::String:
        string_ = new std::string(*other.string_);
        break;
      case Kind::Array:
        array_ = new std::vector<Value>(*other.array_);
        break;
      case Kind::Object:
        object_ = new std::vector<Member>(*other.object_);
        break;
    }
}

void
Value::moveFrom(Value &&other) noexcept
{
    kind_ = other.kind_;
    switch (kind_) {
      case Kind::Null:
        integer_ = 0;
        break;
      case Kind::Boolean:
        boolean_ = other.boolean_;
        break;
      case Kind::Integer:
        integer_ = other.integer_;
        break;
      case Kind::Real:
        real_ = other.real_;
        break;
      case Kind::String:
        string_ = other.string_;
        break;
      case Kind::Array:
        array_ = other.array_;
        break;
      case Kind::Object:
        object_ = other.object_;
        break;
    }
    other.kind_ = Kind::Null;
    other.integer_ = 0;
}

Value
Value::makeArray()
{
    Value value;
    value.kind_ = Kind::Array;
    value.array_ = new std::vector<Value>();
    return value;
}

Value
Value::makeArray(std::vector<Value> elements)
{
    Value value;
    value.kind_ = Kind::Array;
    value.array_ = new std::vector<Value>(std::move(elements));
    return value;
}

Value
Value::makeObject()
{
    Value value;
    value.kind_ = Kind::Object;
    value.object_ = new std::vector<Member>();
    return value;
}

Value
Value::makeObject(std::vector<Member> members)
{
    Value value;
    value.kind_ = Kind::Object;
    value.object_ = new std::vector<Member>(std::move(members));
    return value;
}

void
Value::kindMismatch(const char *expected) const
{
    fatal(std::string("JSON kind mismatch: expected ") + expected +
          ", found " + kindName(kind_));
}

bool
Value::asBoolean() const
{
    if (!isBoolean())
        kindMismatch("boolean");
    return boolean_;
}

int64_t
Value::asInteger() const
{
    if (!isInteger())
        kindMismatch("integer");
    return integer_;
}

double
Value::asDouble() const
{
    if (isInteger())
        return static_cast<double>(integer_);
    if (isReal())
        return real_;
    kindMismatch("number");
}

const std::string &
Value::asString() const
{
    if (!isString())
        kindMismatch("string");
    return *string_;
}

size_t
Value::size() const
{
    if (isArray())
        return array_->size();
    if (isObject())
        return object_->size();
    kindMismatch("array or object");
}

const Value &
Value::at(size_t index) const
{
    if (!isArray())
        kindMismatch("array");
    if (index >= array_->size())
        fatal("JSON array index " + std::to_string(index) +
              " out of range (size " + std::to_string(array_->size()) +
              ")");
    return (*array_)[index];
}

Value &
Value::at(size_t index)
{
    const Value &self = *this;
    return const_cast<Value &>(self.at(index));
}

void
Value::append(Value element)
{
    if (!isArray())
        kindMismatch("array");
    array_->push_back(std::move(element));
}

const std::vector<Value> &
Value::elements() const
{
    if (!isArray())
        kindMismatch("array");
    return *array_;
}

bool
Value::contains(std::string_view key) const
{
    return find(key) != nullptr;
}

const Value *
Value::find(std::string_view key) const
{
    if (!isObject())
        kindMismatch("object");
    for (const Member &member : *object_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

Value *
Value::find(std::string_view key)
{
    const Value &self = *this;
    return const_cast<Value *>(self.find(key));
}

const Value &
Value::at(std::string_view key) const
{
    const Value *value = find(key);
    if (!value)
        fatal("JSON object has no member \"" + std::string(key) + "\"");
    return *value;
}

Value &
Value::at(std::string_view key)
{
    const Value &self = *this;
    return const_cast<Value &>(self.at(key));
}

void
Value::set(std::string_view key, Value value)
{
    if (!isObject())
        kindMismatch("object");
    for (Member &member : *object_) {
        if (member.first == key) {
            member.second = std::move(value);
            return;
        }
    }
    object_->emplace_back(std::string(key), std::move(value));
}

bool
Value::erase(std::string_view key)
{
    if (!isObject())
        kindMismatch("object");
    for (auto it = object_->begin(); it != object_->end(); ++it) {
        if (it->first == key) {
            object_->erase(it);
            return true;
        }
    }
    return false;
}

const std::vector<Value::Member> &
Value::members() const
{
    if (!isObject())
        kindMismatch("object");
    return *object_;
}

bool
Value::operator==(const Value &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Boolean:
        return boolean_ == other.boolean_;
      case Kind::Integer:
        return integer_ == other.integer_;
      case Kind::Real:
        return real_ == other.real_;
      case Kind::String:
        return *string_ == *other.string_;
      case Kind::Array:
        return *array_ == *other.array_;
      case Kind::Object:
        return *object_ == *other.object_;
    }
    panic("Value::operator==: invalid Kind tag");
}

} // namespace parchmint::json
