#include "json/parse.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hh"
#include "obs/obs.hh"

namespace parchmint::json
{

ParseError::ParseError(const std::string &message, size_t line,
                       size_t column)
    : UserError("JSON parse error at line " + std::to_string(line) +
                ", column " + std::to_string(column) + ": " + message),
      line_(line), column_(column)
{
}

namespace
{

/**
 * The recursive-descent parser over a string_view with position
 * tracking. One instance per parse() call.
 */
class Parser
{
  public:
    Parser(std::string_view text, const ParseOptions &options)
        : text_(text), options_(options)
    {
    }

    Value
    run()
    {
        skipWhitespace();
        Value value = parseValue();
        skipWhitespace();
        if (!atEnd())
            fail("trailing content after JSON value");
        return value;
    }

    /** Values parsed so far (after run(): the whole document). */
    size_t values() const { return values_; }

  private:
    bool atEnd() const { return pos_ >= text_.size(); }

    char
    peek() const
    {
        if (atEnd())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    advance()
    {
        char c = peek();
        ++pos_;
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    [[noreturn]] void
    fail(const std::string &message) const
    {
        throw ParseError(message, line_, column_);
    }

    void
    skipWhitespace()
    {
        while (!atEnd()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                advance();
            else
                break;
        }
    }

    void
    expect(char wanted)
    {
        if (atEnd() || peek() != wanted) {
            fail(std::string("expected '") + wanted + "'");
        }
        advance();
    }

    void
    expectLiteral(std::string_view literal)
    {
        for (char wanted : literal) {
            if (atEnd() || peek() != wanted)
                fail("invalid literal");
            advance();
        }
    }

    Value
    parseValue()
    {
        ++values_;
        if (depth_ > options_.maxDepth)
            fail("nesting depth exceeds limit of " +
                 std::to_string(options_.maxDepth));
        char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return Value(parseString());
          case 't':
            expectLiteral("true");
            return Value(true);
          case 'f':
            expectLiteral("false");
            return Value(false);
          case 'n':
            expectLiteral("null");
            return Value();
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            fail(std::string("unexpected character '") + c + "'");
        }
    }

    Value
    parseObject()
    {
        ++depth_;
        expect('{');
        Value object = Value::makeObject();
        skipWhitespace();
        if (!atEnd() && peek() == '}') {
            advance();
            --depth_;
            return object;
        }
        while (true) {
            skipWhitespace();
            if (atEnd() || peek() != '"')
                fail("expected string key in object");
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            skipWhitespace();
            if (object.contains(key))
                fail("duplicate object key \"" + key + "\"");
            object.set(key, parseValue());
            skipWhitespace();
            char c = peek();
            if (c == ',') {
                advance();
                continue;
            }
            if (c == '}') {
                advance();
                --depth_;
                return object;
            }
            fail("expected ',' or '}' in object");
        }
    }

    Value
    parseArray()
    {
        ++depth_;
        expect('[');
        Value array = Value::makeArray();
        skipWhitespace();
        if (!atEnd() && peek() == ']') {
            advance();
            --depth_;
            return array;
        }
        while (true) {
            skipWhitespace();
            array.append(parseValue());
            skipWhitespace();
            char c = peek();
            if (c == ',') {
                advance();
                continue;
            }
            if (c == ']') {
                advance();
                --depth_;
                return array;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (atEnd())
                fail("unterminated string");
            char c = advance();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            char escape = advance();
            switch (escape) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u':
                appendUnicodeEscape(out);
                break;
              default:
                fail(std::string("invalid escape '\\") + escape + "'");
            }
        }
    }

    unsigned
    parseHex4()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            char c = advance();
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        return code;
    }

    void
    appendUnicodeEscape(std::string &out)
    {
        unsigned code = parseHex4();
        if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: a low surrogate must follow.
            if (atEnd() || advance() != '\\' || atEnd() ||
                advance() != 'u') {
                fail("high surrogate not followed by \\u escape");
            }
            unsigned low = parseHex4();
            if (low < 0xdc00 || low > 0xdfff)
                fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
        } else if (code >= 0xdc00 && code <= 0xdfff) {
            fail("unpaired low surrogate");
        }
        appendUtf8(out, code);
    }

    static void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xf0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        }
    }

    Value
    parseNumber()
    {
        size_t start = pos_;
        bool is_real = false;

        if (peek() == '-')
            advance();
        if (atEnd())
            fail("truncated number");
        if (peek() == '0') {
            advance();
        } else if (peek() >= '1' && peek() <= '9') {
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        } else {
            fail("invalid number");
        }
        if (!atEnd() && peek() == '.') {
            is_real = true;
            advance();
            if (atEnd() || peek() < '0' || peek() > '9')
                fail("digit required after decimal point");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            is_real = true;
            advance();
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                advance();
            if (atEnd() || peek() < '0' || peek() > '9')
                fail("digit required in exponent");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }

        std::string lexeme(text_.substr(start, pos_ - start));
        if (!is_real) {
            errno = 0;
            char *end = nullptr;
            long long integer = std::strtoll(lexeme.c_str(), &end, 10);
            if (errno != ERANGE && end && *end == '\0')
                return Value(static_cast<int64_t>(integer));
            // Fall through: magnitude exceeds int64, store as real.
        }
        errno = 0;
        double real = std::strtod(lexeme.c_str(), nullptr);
        if (!std::isfinite(real))
            fail("number out of representable range");
        return Value(real);
    }

    std::string_view text_;
    const ParseOptions &options_;
    size_t pos_ = 0;
    size_t line_ = 1;
    size_t column_ = 1;
    size_t depth_ = 0;
    /** Values parsed, for the observability counters. */
    size_t values_ = 0;
};

} // namespace

Value
parse(std::string_view text, const ParseOptions &options)
{
    PM_OBS_SPAN("json.parse", "parse");
    Parser parser(text, options);
    Value value = parser.run();
    PM_OBS_COUNT("json.parse.calls", 1);
    PM_OBS_COUNT("json.parse.bytes", text.size());
    PM_OBS_COUNT("json.parse.values", parser.values());
    return value;
}

Value
parseFile(const std::string &path, const ParseOptions &options)
{
    std::ifstream stream(path, std::ios::binary);
    if (!stream)
        fatal("cannot open file for reading: " + path);
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    return parse(buffer.str(), options);
}

} // namespace parchmint::json
