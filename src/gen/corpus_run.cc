#include "gen/corpus_run.hh"

#include <algorithm>
#include <utility>

#include "common/error.hh"
#include "core/deserialize.hh"
#include "exec/task_graph.hh"
#include "exec/thread_pool.hh"
#include "gen/corpus.hh"
#include "obs/clock.hh"
#include "obs/obs.hh"
#include "place/annealing_placer.hh"
#include "place/cost.hh"
#include "route/router.hh"
#include "schema/rules.hh"
#include "sim/mixing.hh"

namespace parchmint::gen
{

namespace
{

/** Per-entry pipeline outcome, reduced into the summary and then
 * discarded with its window. */
struct EntryResult
{
    std::string name;
    bool ok = false;
    bool simSolved = false;
    std::string failure;
    size_t components = 0;
    size_t connections = 0;
    size_t issueErrors = 0;
    size_t issueWarnings = 0;
    size_t routedNets = 0;
    size_t totalNets = 0;
    int64_t routedLength = 0;
    size_t routeViolations = 0;
    int64_t hpwl = 0;
};

/** The full per-entry pipeline; throws propagate to the task
 * graph, which records them per entry. */
void
runEntry(const std::string &name, const std::string &text,
         uint64_t seed, bool simulate, EntryResult &out)
{
    obs::ScopedSpan job(name, "corpus");
    Device device = [&] {
        PM_OBS_SPAN("parse", "corpus");
        return fromJsonText(text);
    }();
    out.components = device.components().size();
    out.connections = device.connections().size();

    place::AnnealingOptions annealing;
    annealing.seed = seed;
    place::AnnealingPlacer placer(annealing);
    place::Placement placement = [&] {
        PM_OBS_SPAN("place", "corpus");
        return placer.place(device);
    }();
    out.hpwl = placer.lastCost().hpwl;

    route::RouteResult routed = [&] {
        PM_OBS_SPAN("route", "corpus");
        return route::routeDevice(device, placement);
    }();
    out.routedNets = routed.routedCount;
    out.totalNets = routed.nets.size();
    out.routedLength = routed.totalLength;
    out.routeViolations = routed.totalViolations;

    placement.writeTo(device);
    {
        PM_OBS_SPAN("validate", "corpus");
        for (const schema::Issue &issue :
             schema::checkRules(device)) {
            if (issue.severity == schema::Severity::Error)
                ++out.issueErrors;
            else
                ++out.issueWarnings;
        }
    }
    if (simulate) {
        PM_OBS_SPAN("sim", "corpus");
        try {
            sim::solveMixing(device);
            out.simSolved = true;
        } catch (const UserError &) {
            // Best-effort, as in the suite runner.
        }
    }
    out.ok = out.issueErrors == 0;
    if (!out.ok)
        out.failure = "semantic rule errors after PnR";
}

} // namespace

CorpusRunSummary
runCorpus(const std::string &dir, const CorpusRunOptions &options)
{
    CorpusReader reader(dir);
    size_t workers = options.jobs == 0 ? 1 : options.jobs;
    size_t window = options.window == 0
                        ? std::max<size_t>(4 * workers, 8)
                        : options.window;

    CorpusRunSummary summary;
    summary.workers = workers;

    exec::ThreadPool pool(workers);
    exec::RunOptions run_options;
    run_options.taskDeadline = options.deadline;

    obs::Stopwatch wall;
    bool exhausted = false;
    while (!exhausted) {
        // Materialize one window of intact entries.
        std::vector<std::pair<CorpusEntry, std::string>> batch;
        batch.reserve(window);
        CorpusEntry entry;
        std::string text;
        while (batch.size() < window) {
            if (options.limit != 0 &&
                summary.entries + batch.size() >= options.limit) {
                exhausted = true;
                break;
            }
            if (!reader.next(entry, text)) {
                exhausted = true;
                break;
            }
            batch.emplace_back(std::move(entry), std::move(text));
        }
        if (batch.empty())
            break;
        summary.peakWindow =
            std::max(summary.peakWindow, batch.size());

        std::vector<EntryResult> results(batch.size());
        exec::TaskGraph graph;
        for (size_t i = 0; i < batch.size(); ++i) {
            const std::string &name = batch[i].first.name;
            const std::string &bytes = batch[i].second;
            EntryResult &out = results[i];
            uint64_t seed = options.seed;
            bool simulate = options.simulate;
            graph.add(name,
                      [&name, &bytes, &out, seed,
                       simulate](const exec::CancelToken &token) {
                          token.throwIfCancelled("corpus " + name);
                          runEntry(name, bytes, seed, simulate,
                                   out);
                      });
        }
        std::vector<exec::TaskResult> outcomes =
            graph.run(pool, run_options);

        for (size_t i = 0; i < batch.size(); ++i) {
            const exec::TaskResult &outcome = outcomes[i];
            EntryResult &result = results[i];
            ++summary.entries;
            summary.components += result.components;
            summary.connections += result.connections;
            summary.issueErrors += result.issueErrors;
            summary.issueWarnings += result.issueWarnings;
            summary.routedNets += result.routedNets;
            summary.totalNets += result.totalNets;
            summary.routedLength += result.routedLength;
            summary.routeViolations += result.routeViolations;
            summary.hpwl += result.hpwl;
            summary.simSolved += result.simSolved ? 1 : 0;
            if (outcome.ok() && result.ok) {
                ++summary.okCount;
                continue;
            }
            ++summary.failedCount;
            if (summary.failures.size() <
                CorpusRunSummary::kMaxFailureLines) {
                summary.failures.push_back(
                    batch[i].first.name + ": " +
                    (outcome.ok() ? result.failure
                                  : outcome.reason));
            }
        }
    }
    summary.wallUs = wall.elapsedUs();
    summary.skipped = reader.skipped();
    for (const std::string &warning : reader.warnings()) {
        if (summary.warnings.size() <
            CorpusRunSummary::kMaxFailureLines)
            summary.warnings.push_back(warning);
    }

    if (obs::enabled()) {
        obs::Registry &registry = obs::registry();
        registry.add("gen.corpus.entries", summary.entries);
        registry.add("gen.corpus.ok", summary.okCount);
        registry.add("gen.corpus.failed", summary.failedCount);
        registry.add("gen.corpus.skipped", summary.skipped);
        registry.setGauge("gen.corpus.window",
                          static_cast<double>(summary.peakWindow));
        registry.setGauge("exec.workers",
                          static_cast<double>(workers));
    }
    return summary;
}

} // namespace parchmint::gen
