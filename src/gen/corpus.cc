#include "gen/corpus.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.hh"
#include "common/rng.hh"
#include "core/serialize.hh"
#include "exec/task_graph.hh"
#include "exec/thread_pool.hh"
#include "gen/generator.hh"
#include "json/parse.hh"
#include "json/write.hh"
#include "obs/env.hh"
#include "obs/manifest.hh"

namespace parchmint::gen
{

namespace fs = std::filesystem;

namespace
{

/** Mirrors svc/cache.cc (gen cannot link svc; gen_test pins the
 * two equal). */
constexpr uint64_t kContentHashBase = 0x70617263686d696eULL;

std::string
readFileBytes(const fs::path &path, bool &ok)
{
    std::ifstream stream(path, std::ios::binary);
    if (!stream) {
        ok = false;
        return {};
    }
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    ok = static_cast<bool>(stream) || stream.eof();
    return buffer.str();
}

/** Write via a temp name and rename into place (see corpus.hh). */
void
writeFileAtomic(const fs::path &path, const std::string &bytes,
                size_t writer_tag)
{
    fs::path temp = path;
    temp += ".tmp" + std::to_string(writer_tag);
    {
        std::ofstream stream(temp,
                             std::ios::binary | std::ios::trunc);
        if (!stream)
            throw UserError("gen corpus: cannot write " +
                            temp.string());
        stream.write(bytes.data(),
                     static_cast<std::streamsize>(bytes.size()));
        if (!stream)
            throw UserError("gen corpus: short write to " +
                            temp.string());
    }
    std::error_code ec;
    fs::rename(temp, path, ec);
    if (ec) {
        fs::remove(temp, ec);
        throw UserError("gen corpus: cannot rename into " +
                        path.string());
    }
}

json::Value
entryToJson(const CorpusEntry &entry)
{
    json::Value object = json::Value::makeObject();
    object.set("index",
               json::Value(static_cast<int64_t>(entry.index)));
    object.set("name", json::Value(entry.name));
    object.set("file", json::Value(entry.file));
    object.set("hash", json::Value(entry.hash));
    object.set("bytes",
               json::Value(static_cast<int64_t>(entry.bytes)));
    object.set("components",
               json::Value(static_cast<int64_t>(entry.components)));
    object.set(
        "connections",
        json::Value(static_cast<int64_t>(entry.connections)));
    if (!entry.mintFile.empty())
        object.set("mint_file", json::Value(entry.mintFile));
    return object;
}

size_t
requireEntryUint(const json::Value &object, const char *member,
                 size_t index)
{
    const json::Value *value = object.find(member);
    if (!value || !value->isInteger() || value->asInteger() < 0)
        throw UserError("gen corpus: manifest entry " +
                        std::to_string(index) + ": \"" + member +
                        "\" must be a non-negative integer");
    return static_cast<size_t>(value->asInteger());
}

std::string
requireEntryString(const json::Value &object, const char *member,
                   size_t index)
{
    const json::Value *value = object.find(member);
    if (!value || !value->isString() || value->asString().empty())
        throw UserError("gen corpus: manifest entry " +
                        std::to_string(index) + ": \"" + member +
                        "\" must be a non-empty string");
    return value->asString();
}

CorpusEntry
entryFromJson(const json::Value &object, size_t position)
{
    if (!object.isObject())
        throw UserError("gen corpus: manifest entry " +
                        std::to_string(position) +
                        " must be an object");
    CorpusEntry entry;
    entry.index = requireEntryUint(object, "index", position);
    entry.name = requireEntryString(object, "name", position);
    entry.file = requireEntryString(object, "file", position);
    entry.hash = requireEntryString(object, "hash", position);
    entry.bytes = requireEntryUint(object, "bytes", position);
    if (object.find("components"))
        entry.components =
            requireEntryUint(object, "components", position);
    if (object.find("connections"))
        entry.connections =
            requireEntryUint(object, "connections", position);
    if (const json::Value *mint = object.find("mint_file")) {
        if (!mint->isString())
            throw UserError("gen corpus: manifest entry " +
                            std::to_string(position) +
                            ": \"mint_file\" must be a string");
        entry.mintFile = mint->asString();
    }
    return entry;
}

} // namespace

uint64_t
corpusHash(std::string_view bytes)
{
    return deriveSeed(kContentHashBase, bytes);
}

std::string
corpusHashHex(uint64_t hash)
{
    static const char *digits = "0123456789abcdef";
    std::string text(16, '0');
    for (size_t i = 0; i < 16; ++i)
        text[15 - i] = digits[(hash >> (4 * i)) & 0xF];
    return text;
}

std::string
corpusFileName(std::string_view bytes)
{
    return "gen-" + corpusHashHex(corpusHash(bytes)) + ".json";
}

std::string
corpusManifestText(const CorpusManifest &manifest)
{
    json::Value document = json::Value::makeObject();
    document.set("schema", json::Value(kCorpusSchema));
    document.set("manifest_version",
                 json::Value(manifest.manifestVersion));
    document.set("spec", specToJson(manifest.spec));
    document.set("environment", manifest.environment);
    json::Value entries = json::Value::makeArray();
    for (const CorpusEntry &entry : manifest.entries)
        entries.append(entryToJson(entry));
    document.set("entries", std::move(entries));
    json::WriteOptions options;
    options.pretty = false;
    options.asciiOnly = true;
    return json::write(document, options);
}

WriteCorpusResult
writeCorpus(const std::string &dir, const GenSpec &spec,
            const WriteCorpusOptions &options)
{
    fs::path root(dir);
    std::error_code ec;
    fs::create_directories(root, ec);
    if (ec)
        throw UserError("gen corpus: cannot create directory " +
                        root.string() + ": " + ec.message());

    WriteCorpusResult result;
    result.manifest.spec = spec;
    result.manifest.manifestVersion = obs::manifestVersion();
    result.manifest.environment = obs::systemJson();
    result.manifest.entries.resize(spec.count);

    // One task per instance; each generates, hashes and writes its
    // own file, holding exactly one netlist in memory. Entry order
    // is by index regardless of scheduling, so the corpus bytes
    // are jobs-independent.
    std::vector<CorpusEntry> &entries = result.manifest.entries;
    exec::TaskGraph graph;
    for (size_t i = 0; i < spec.count; ++i) {
        graph.add("gen_" + std::to_string(i),
                  [&, i](const exec::CancelToken &) {
                      Device device = generateNetlist(spec, i);
                      json::WriteOptions text_options;
                      text_options.pretty = false;
                      text_options.asciiOnly = true;
                      std::string text =
                          json::write(toJson(device), text_options);
                      CorpusEntry &entry = entries[i];
                      entry.index = i;
                      entry.name = device.name();
                      entry.hash =
                          corpusHashHex(corpusHash(text));
                      entry.file = "gen-" + entry.hash + ".json";
                      entry.bytes = text.size();
                      entry.components = device.components().size();
                      entry.connections =
                          device.connections().size();
                      fs::path path = root / entry.file;
                      std::error_code exists_ec;
                      if (!fs::exists(path, exists_ec))
                          writeFileAtomic(path, text, i);
                      if (spec.emitMint) {
                          entry.mintFile =
                              "gen-" + entry.hash + ".mint";
                          fs::path mint_path = root / entry.mintFile;
                          if (!fs::exists(mint_path, exists_ec))
                              writeFileAtomic(
                                  mint_path,
                                  generateMintText(spec, i), i);
                      }
                  });
    }
    exec::ThreadPool pool(options.jobs == 0 ? 1 : options.jobs);
    std::vector<exec::TaskResult> outcomes = graph.run(pool, {});
    for (const exec::TaskResult &outcome : outcomes) {
        if (outcome.status != exec::TaskStatus::Ok)
            throw UserError("gen corpus: " + outcome.name +
                            " failed: " + outcome.reason);
    }

    std::set<std::string> distinct;
    for (const CorpusEntry &entry : entries) {
        result.netlistBytes += entry.bytes;
        if (!distinct.insert(entry.file).second)
            ++result.deduplicated;
    }
    result.filesWritten = distinct.size();

    writeFileAtomic(root / kCorpusManifestFile,
                    corpusManifestText(result.manifest),
                    spec.count);
    return result;
}

CorpusManifest
readCorpusManifest(const std::string &dir)
{
    fs::path path = fs::path(dir) / kCorpusManifestFile;
    bool ok = true;
    std::string text = readFileBytes(path, ok);
    if (!ok)
        throw UserError("gen corpus: cannot read manifest " +
                        path.string());
    json::Value document;
    try {
        document = json::parse(text);
    } catch (const json::ParseError &error) {
        throw UserError("gen corpus: manifest " + path.string() +
                        " is not valid JSON: " + error.what());
    }
    if (!document.isObject())
        throw UserError("gen corpus: manifest must be an object");
    const json::Value *schema = document.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != kCorpusSchema)
        throw UserError(
            std::string("gen corpus: manifest schema must be \"") +
            kCorpusSchema + "\"");

    CorpusManifest manifest;
    const json::Value *spec = document.find("spec");
    if (!spec)
        throw UserError("gen corpus: manifest has no \"spec\"");
    manifest.spec = parseGenSpec(*spec);
    if (const json::Value *version =
            document.find("manifest_version")) {
        if (!version->isString())
            throw UserError("gen corpus: \"manifest_version\" must "
                            "be a string");
        manifest.manifestVersion = version->asString();
    }
    if (const json::Value *environment =
            document.find("environment"))
        manifest.environment = *environment;
    const json::Value *entries = document.find("entries");
    if (!entries || !entries->isArray())
        throw UserError(
            "gen corpus: manifest \"entries\" must be an array");
    manifest.entries.reserve(entries->size());
    for (size_t i = 0; i < entries->size(); ++i)
        manifest.entries.push_back(
            entryFromJson(entries->at(i), i));
    return manifest;
}

bool
readCorpusEntry(const std::string &dir, const CorpusEntry &entry,
                std::string &text)
{
    bool ok = true;
    std::string bytes = readFileBytes(fs::path(dir) / entry.file,
                                      ok);
    if (!ok || bytes.size() != entry.bytes ||
        corpusHashHex(corpusHash(bytes)) != entry.hash)
        return false;
    text = std::move(bytes);
    return true;
}

CorpusReader::CorpusReader(std::string dir)
    : dir_(std::move(dir)), manifest_(readCorpusManifest(dir_))
{
}

bool
CorpusReader::next(CorpusEntry &entry, std::string &text)
{
    while (cursor_ < manifest_.entries.size()) {
        const CorpusEntry &candidate =
            manifest_.entries[cursor_++];
        fs::path path = fs::path(dir_) / candidate.file;
        bool ok = true;
        std::string bytes = readFileBytes(path, ok);
        if (!ok) {
            ++skipped_;
            warnings_.push_back("skipped " + candidate.file +
                                " (index " +
                                std::to_string(candidate.index) +
                                "): cannot read");
            continue;
        }
        if (bytes.size() != candidate.bytes ||
            corpusHashHex(corpusHash(bytes)) != candidate.hash) {
            ++skipped_;
            warnings_.push_back(
                "skipped " + candidate.file + " (index " +
                std::to_string(candidate.index) +
                "): content does not match manifest hash");
            continue;
        }
        entry = candidate;
        text = std::move(bytes);
        return true;
    }
    return false;
}

VerifyCorpusResult
verifyCorpus(const std::string &dir)
{
    CorpusManifest manifest = readCorpusManifest(dir);
    VerifyCorpusResult result;
    for (const CorpusEntry &entry : manifest.entries) {
        ++result.checked;
        if (entry.file != "gen-" + entry.hash + ".json") {
            ++result.corrupt;
            result.problems.push_back(
                entry.file + ": file name does not encode the "
                             "recorded hash");
            continue;
        }
        fs::path path = fs::path(dir) / entry.file;
        bool ok = true;
        std::string bytes = readFileBytes(path, ok);
        if (!ok) {
            ++result.missing;
            result.problems.push_back(entry.file + ": missing");
            continue;
        }
        if (bytes.size() != entry.bytes ||
            corpusHashHex(corpusHash(bytes)) != entry.hash) {
            ++result.corrupt;
            result.problems.push_back(
                entry.file + ": bytes do not match the manifest");
            continue;
        }
        if (!entry.mintFile.empty()) {
            std::error_code ec;
            if (!fs::exists(fs::path(dir) / entry.mintFile, ec)) {
                ++result.missing;
                result.problems.push_back(entry.mintFile +
                                          ": missing");
            }
        }
    }
    return result;
}

} // namespace parchmint::gen
