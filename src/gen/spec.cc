#include "gen/spec.hh"

#include <algorithm>

#include "common/error.hh"
#include "json/parse.hh"

namespace parchmint::gen
{

namespace
{

bool
validSpecName(std::string_view name)
{
    if (name.empty() || name.size() > kMaxSpecNameLength)
        return false;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            return false;
    }
    return true;
}

uint64_t
requireUint(const json::Value &value, const char *member)
{
    if (!value.isInteger() || value.asInteger() < 0)
        throw UserError(std::string("gen spec: \"") + member +
                        "\" must be a non-negative integer");
    return static_cast<uint64_t>(value.asInteger());
}

size_t
requireRange(const json::Value &value, const char *member,
             size_t lowest, size_t highest)
{
    uint64_t raw = requireUint(value, member);
    if (raw < lowest || raw > highest)
        throw UserError(std::string("gen spec: \"") + member +
                        "\" must be in [" + std::to_string(lowest) +
                        ", " + std::to_string(highest) + "], found " +
                        std::to_string(raw));
    return static_cast<size_t>(raw);
}

} // namespace

const std::vector<Family> &
allFamilies()
{
    static const std::vector<Family> families = {
        Family::Chain, Family::Grid, Family::Tree, Family::Ladder,
        Family::RandomDag,
    };
    return families;
}

const char *
familyName(Family family)
{
    switch (family) {
    case Family::Chain:
        return "chain";
    case Family::Grid:
        return "grid";
    case Family::Tree:
        return "tree";
    case Family::Ladder:
        return "ladder";
    case Family::RandomDag:
        return "random_dag";
    }
    throw UserError("gen spec: invalid family enumerator");
}

Family
parseFamilyName(std::string_view name)
{
    for (Family family : allFamilies()) {
        if (name == familyName(family))
            return family;
    }
    throw UserError("gen spec: unknown family \"" +
                    std::string(name) +
                    "\" (expected chain, grid, tree, ladder or "
                    "random_dag)");
}

const std::vector<EntityKind> &
drawableEntityKinds()
{
    static const std::vector<EntityKind> kinds = {
        EntityKind::Mixer,    EntityKind::DiamondChamber,
        EntityKind::CellTrap, EntityKind::Filter,
        EntityKind::Heater,   EntityKind::Sensor,
    };
    return kinds;
}

const std::vector<EntityWeight> &
defaultEntityMix()
{
    static const std::vector<EntityWeight> mix = [] {
        std::vector<EntityWeight> weights;
        for (EntityKind kind : drawableEntityKinds())
            weights.push_back(EntityWeight{kind, 1});
        return weights;
    }();
    return mix;
}

GenSpec
parseGenSpec(const json::Value &document)
{
    if (!document.isObject())
        throw UserError("gen spec: document must be an object");

    GenSpec spec;

    if (const json::Value *schema = document.find("schema")) {
        if (!schema->isString() ||
            schema->asString() != kSpecSchema)
            throw UserError(
                std::string("gen spec: \"schema\" must be \"") +
                kSpecSchema + "\" when present");
    }
    if (const json::Value *name = document.find("name")) {
        if (!name->isString() || !validSpecName(name->asString()))
            throw UserError(
                "gen spec: \"name\" must be 1..64 chars of "
                "[A-Za-z0-9._-]");
        spec.name = name->asString();
    }
    if (const json::Value *family = document.find("family")) {
        if (!family->isString())
            throw UserError("gen spec: \"family\" must be a string");
        spec.family = parseFamilyName(family->asString());
    }
    if (const json::Value *seed = document.find("seed"))
        spec.seed = requireUint(*seed, "seed");
    if (const json::Value *count = document.find("count"))
        spec.count = requireRange(*count, "count", 1, kMaxCount);
    if (const json::Value *low = document.find("min_components"))
        spec.minComponents =
            requireRange(*low, "min_components", 1, kMaxComponents);
    if (const json::Value *high = document.find("max_components"))
        spec.maxComponents =
            requireRange(*high, "max_components", 1, kMaxComponents);
    if (spec.minComponents > spec.maxComponents)
        throw UserError(
            "gen spec: min_components (" +
            std::to_string(spec.minComponents) +
            ") must not exceed max_components (" +
            std::to_string(spec.maxComponents) + ")");
    if (const json::Value *fanout = document.find("max_fanout"))
        spec.maxFanout =
            requireRange(*fanout, "max_fanout", 1, kMaxFanout);
    if (const json::Value *mix = document.find("entity_mix")) {
        if (!mix->isObject())
            throw UserError("gen spec: \"entity_mix\" must be an "
                            "object of entity -> weight");
        if (mix->empty())
            throw UserError(
                "gen spec: \"entity_mix\" must not be empty");
        const auto &drawable = drawableEntityKinds();
        for (const auto &[entity, weight] : mix->members()) {
            EntityKind kind = parseEntity(entity);
            if (std::find(drawable.begin(), drawable.end(), kind) ==
                drawable.end())
                throw UserError(
                    "gen spec: entity \"" + entity +
                    "\" is not drawable (two-port flow entities "
                    "only)");
            if (!weight.isInteger() || weight.asInteger() < 1 ||
                weight.asInteger() > 1000000)
                throw UserError("gen spec: weight for \"" + entity +
                                "\" must be an integer in "
                                "[1, 1000000]");
            spec.entityMix.push_back(EntityWeight{
                kind,
                static_cast<uint32_t>(weight.asInteger())});
        }
        // Canonical order: catalogue order, not document order, so
        // re-encoded specs hash identically.
        std::sort(spec.entityMix.begin(), spec.entityMix.end(),
                  [&](const EntityWeight &a, const EntityWeight &b) {
                      auto rank = [&](EntityKind kind) {
                          return std::find(drawable.begin(),
                                           drawable.end(), kind) -
                                 drawable.begin();
                      };
                      return rank(a.kind) < rank(b.kind);
                  });
        for (size_t i = 1; i < spec.entityMix.size(); ++i) {
            if (spec.entityMix[i - 1].kind == spec.entityMix[i].kind)
                throw UserError(
                    "gen spec: entity_mix names \"" +
                    entityName(spec.entityMix[i].kind) +
                    "\" more than once");
        }
    }
    if (const json::Value *mint = document.find("emit_mint")) {
        if (!mint->isBoolean())
            throw UserError(
                "gen spec: \"emit_mint\" must be a boolean");
        spec.emitMint = mint->asBoolean();
    }
    return spec;
}

GenSpec
parseGenSpecText(const std::string &text)
{
    return parseGenSpec(json::parse(text));
}

json::Value
specToJson(const GenSpec &spec)
{
    json::Value document = json::Value::makeObject();
    document.set("schema", json::Value(kSpecSchema));
    document.set("name", json::Value(spec.name));
    document.set("family", json::Value(familyName(spec.family)));
    document.set("seed",
                 json::Value(static_cast<int64_t>(spec.seed)));
    document.set("count",
                 json::Value(static_cast<int64_t>(spec.count)));
    document.set(
        "min_components",
        json::Value(static_cast<int64_t>(spec.minComponents)));
    document.set(
        "max_components",
        json::Value(static_cast<int64_t>(spec.maxComponents)));
    document.set("max_fanout",
                 json::Value(static_cast<int64_t>(spec.maxFanout)));
    json::Value mix = json::Value::makeObject();
    const std::vector<EntityWeight> &weights =
        spec.entityMix.empty() ? defaultEntityMix() : spec.entityMix;
    for (const EntityWeight &entry : weights)
        mix.set(entityName(entry.kind),
                json::Value(static_cast<int64_t>(entry.weight)));
    document.set("entity_mix", std::move(mix));
    document.set("emit_mint", json::Value(spec.emitMint));
    return document;
}

} // namespace parchmint::gen
