/**
 * @file
 * Generator specifications: the grammar knobs for synthetic
 * netlist families.
 *
 * A GenSpec is the complete, serializable description of a netlist
 * family: topology grammar (chain, grid, tree, ladder, random
 * DAG), size window, entity mix and port fan-out, plus the base
 * seed and the number of instances. The spec is the unit of
 * reproducibility — the corpus manifest embeds it verbatim, and
 * regenerating from the manifest yields byte-identical netlists
 * (see gen/generator.hh for the seeding contract).
 *
 * parseGenSpec is strict about the members it knows (wrong types
 * and out-of-range values are UserError) and ignores members it
 * does not, so wrapper documents — the /v1/generate request body
 * adds "index" — can carry a spec without re-encoding it.
 * specToJson emits a canonical form: parseGenSpec(specToJson(s))
 * round-trips every field, and specToJson(parseGenSpec(d)) is a
 * fixpoint for any accepted document.
 */

#ifndef PARCHMINT_GEN_SPEC_HH
#define PARCHMINT_GEN_SPEC_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/entity.hh"
#include "json/value.hh"

namespace parchmint::gen
{

/** Schema identifier stamped into serialized specs. */
inline constexpr const char *kSpecSchema = "parchmint-gen-spec-v1";

/** Topology grammar family. */
enum class Family
{
    /** Series pipeline with tap outlets. */
    Chain,
    /** Planar mesh with west inlets and east outlets. */
    Grid,
    /** Splitting tree: TREE interiors, mixed-entity leaves. */
    Tree,
    /** Dilution-style mixer ladder with buffer inlets and waste
     * taps. */
    Ladder,
    /** Ranked random DAG: spanning tree plus forward extra edges. */
    RandomDag,
};

/** All families, in canonical (serialization) order. */
const std::vector<Family> &allFamilies();

/** Canonical name ("chain", "grid", "tree", "ladder",
 * "random_dag"). */
const char *familyName(Family family);

/**
 * Parse a canonical family name.
 * @throws UserError on an unknown name.
 */
Family parseFamilyName(std::string_view name);

/** One entry of the entity mix: an entity and its draw weight. */
struct EntityWeight
{
    EntityKind kind = EntityKind::Mixer;
    /** Relative draw weight; always >= 1 after parsing. */
    uint32_t weight = 1;
};

/** Spec limits enforced by parseGenSpec. */
inline constexpr size_t kMaxCount = 1000000;
inline constexpr size_t kMaxComponents = 2048;
inline constexpr size_t kMaxFanout = 8;
inline constexpr size_t kMaxSpecNameLength = 64;

/** See file comment. */
struct GenSpec
{
    /** Family name prefix for generated netlists; identifier
     * alphabet [A-Za-z0-9._-], 1..64 chars. */
    std::string name = "gen";
    Family family = Family::RandomDag;
    /** Base seed; per-instance streams derive from it. */
    uint64_t seed = 1;
    /** Number of netlists in the family (1..kMaxCount). */
    size_t count = 1;
    /** Component-count window, inclusive (1..kMaxComponents). */
    size_t minComponents = 8;
    size_t maxComponents = 24;
    /** Inlet/outlet fan-out knob (1..kMaxFanout). */
    size_t maxFanout = 2;
    /** Entity draw weights; empty means defaultEntityMix(). */
    std::vector<EntityWeight> entityMix;
    /** Also render MINT source into the corpus. */
    bool emitMint = false;
};

/**
 * The entity kinds a spec may draw from: the catalogue's two-port
 * flow entities, so every family is valid by construction.
 */
const std::vector<EntityKind> &drawableEntityKinds();

/** Uniform weights over drawableEntityKinds(). */
const std::vector<EntityWeight> &defaultEntityMix();

/**
 * Parse a spec document per the file comment.
 *
 * Members: "name" (string), "family" (string), "seed" (uint),
 * "count" (uint), "min_components"/"max_components" (uint),
 * "max_fanout" (uint), "entity_mix" (object: entity name ->
 * positive integer weight), "emit_mint" (bool), and an optional
 * "schema" that must equal kSpecSchema when present. Every member
 * is optional; defaults are the GenSpec initializers.
 *
 * @throws UserError on wrong types, out-of-range values,
 *         min > max, unknown families or non-drawable entities.
 */
GenSpec parseGenSpec(const json::Value &document);

/** Parse a spec from JSON text. @throws json::ParseError,
 * UserError. */
GenSpec parseGenSpecText(const std::string &text);

/** Serialize canonically (see file comment). */
json::Value specToJson(const GenSpec &spec);

} // namespace parchmint::gen

#endif // PARCHMINT_GEN_SPEC_HH
