/**
 * @file
 * The content-addressed on-disk corpus format
 * (`parchmint-gen-corpus-v1`).
 *
 * A corpus directory holds one canonical-JSON netlist per
 * generated instance plus a manifest:
 *
 *   <dir>/corpus.json        the manifest: schema, spec,
 *                            manifest_version, environment
 *                            snapshot, ordered entry table
 *   <dir>/gen-<hash16>.json  canonical (compact, ASCII) netlist
 *                            text; <hash16> content-addresses the
 *                            bytes with the service's content hash
 *   <dir>/gen-<hash16>.mint  MINT source, when the spec sets
 *                            emit_mint
 *
 * Content addressing makes the corpus self-verifying (a file's
 * name commits to its bytes) and deduplicating (identical
 * instances share one file; the manifest still lists every index).
 * Files are written to a temp name and renamed into place, so
 * concurrent writers — `--jobs N`, or two processes racing on the
 * same directory — never expose partial files.
 *
 * Determinism: the manifest embeds the spec verbatim and entries
 * are ordered by index, so the same (spec, seed) produces a
 * byte-identical corpus directory at any `--jobs`, and
 * regenerating from a manifest's spec reproduces every netlist
 * byte-for-byte. The embedded environment snapshot is provenance
 * (which machine stamped the corpus), not an input to generation.
 *
 * Reading streams: CorpusReader loads only the manifest up front
 * and materializes one netlist at a time, so a 10k-instance sweep
 * holds O(1) netlists in memory. Corrupt, truncated or missing
 * corpus files are skipped with a warning rather than aborting the
 * stream — a damaged corpus still yields every intact entry.
 */

#ifndef PARCHMINT_GEN_CORPUS_HH
#define PARCHMINT_GEN_CORPUS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gen/spec.hh"
#include "json/value.hh"

namespace parchmint::gen
{

/** Manifest schema identifier. */
inline constexpr const char *kCorpusSchema =
    "parchmint-gen-corpus-v1";
/** Manifest file name inside a corpus directory. */
inline constexpr const char *kCorpusManifestFile = "corpus.json";

/**
 * The corpus content hash: deriveSeed folded over the bytes with
 * the service's content-hash base, so corpus file stems equal the
 * daemon's cache keys for the same bytes (gen cannot link svc —
 * the service links gen — hence the mirror; gen_test pins the two
 * functions equal).
 */
uint64_t corpusHash(std::string_view bytes);

/** 16 lowercase hex digits of @p hash (the <hash16> file stem). */
std::string corpusHashHex(uint64_t hash);

/** "gen-<hash16>.json" for canonical netlist text @p bytes. */
std::string corpusFileName(std::string_view bytes);

/** One manifest entry (ordered by index in the manifest). */
struct CorpusEntry
{
    size_t index = 0;
    /** generatedName(spec, index). */
    std::string name;
    /** Netlist file name within the corpus directory. */
    std::string file;
    /** corpusHashHex of the netlist bytes. */
    std::string hash;
    /** Netlist byte count. */
    size_t bytes = 0;
    /** Component count (ports included). */
    size_t components = 0;
    size_t connections = 0;
    /** MINT file name; empty unless the spec sets emit_mint. */
    std::string mintFile;
};

/** The parsed corpus manifest. */
struct CorpusManifest
{
    GenSpec spec;
    /** obs::manifestVersion() at write time. */
    std::string manifestVersion;
    /** obs environment snapshot at write time (provenance). */
    json::Value environment;
    std::vector<CorpusEntry> entries;
};

/** writeCorpus knobs. */
struct WriteCorpusOptions
{
    /** Worker threads; byte-identical output at any value. */
    size_t jobs = 1;
};

/** writeCorpus outcome. */
struct WriteCorpusResult
{
    /** Distinct netlist files written. */
    size_t filesWritten = 0;
    /** Instances that deduplicated onto an existing file. */
    size_t deduplicated = 0;
    /** Total netlist bytes across all entries (pre-dedupe). */
    uint64_t netlistBytes = 0;
    CorpusManifest manifest;
};

/**
 * Generate spec.count instances and write a corpus directory (see
 * file comment). Creates @p dir as needed; existing files with
 * matching names are reused (content addressing makes them
 * correct by construction).
 *
 * @throws UserError on I/O failures.
 */
WriteCorpusResult writeCorpus(const std::string &dir,
                              const GenSpec &spec,
                              const WriteCorpusOptions &options = {});

/**
 * Read and validate a corpus manifest.
 * @throws UserError when the manifest is missing, malformed, or
 *         carries the wrong schema.
 */
CorpusManifest readCorpusManifest(const std::string &dir);

/** Serialize a manifest (the exact bytes writeCorpus stores). */
std::string corpusManifestText(const CorpusManifest &manifest);

/**
 * Read one manifest entry's netlist bytes, verifying size and
 * content hash — the random-access complement to CorpusReader
 * (the daemon serves /v1/corpus/<ref> with it, one file read per
 * request).
 *
 * @return False when the file is missing, truncated or corrupt.
 */
bool readCorpusEntry(const std::string &dir,
                     const CorpusEntry &entry, std::string &text);

/**
 * Bounded-memory streaming reader (see file comment). Not
 * thread-safe; give each thread its own reader.
 */
class CorpusReader
{
  public:
    /** Loads the manifest only. @throws UserError (see
     * readCorpusManifest). */
    explicit CorpusReader(std::string dir);

    const CorpusManifest &manifest() const { return manifest_; }

    /**
     * Fetch the next intact entry: fills @p entry and the netlist
     * @p text, verifying the content hash. Damaged entries are
     * skipped with a warning.
     *
     * @return False when the corpus is exhausted.
     */
    bool next(CorpusEntry &entry, std::string &text);

    /** Entries skipped so far (missing/truncated/corrupt). */
    size_t skipped() const { return skipped_; }
    /** One human-readable line per skipped entry. */
    const std::vector<std::string> &warnings() const
    {
        return warnings_;
    }

  private:
    std::string dir_;
    CorpusManifest manifest_;
    size_t cursor_ = 0;
    size_t skipped_ = 0;
    std::vector<std::string> warnings_;
};

/** verifyCorpus outcome. */
struct VerifyCorpusResult
{
    size_t checked = 0;
    size_t missing = 0;
    size_t corrupt = 0;
    /** One line per problem. */
    std::vector<std::string> problems;
    bool ok() const { return missing == 0 && corrupt == 0; }
};

/**
 * Integrity-check every manifest entry: the file exists, its bytes
 * match the recorded size and content hash, and its stem matches
 * the hash. Does not regenerate (see gen_suite --regenerate for
 * the stronger spec-level check).
 */
VerifyCorpusResult verifyCorpus(const std::string &dir);

} // namespace parchmint::gen

#endif // PARCHMINT_GEN_CORPUS_HH
