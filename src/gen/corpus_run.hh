/**
 * @file
 * Bounded-memory PnR sweeps over a generated corpus.
 *
 * runCorpus() streams a corpus directory (gen/corpus.hh) through
 * the paper's pipeline — parse, place, route, validate, optional
 * sim — in fixed-size windows: at most `window` netlists (default
 * 4x jobs) are materialized at once, each window runs as one task
 * graph on the shared pool, and only aggregate counters survive
 * the window. That is what lets suite_run and parchmintd sweep a
 * 10,000-netlist corpus without holding 10,000 routed netlists.
 *
 * Determinism matches the suite runner: the annealer derives its
 * stream from the sweep seed and the device name, never from job
 * or window order, so `--jobs 1` and `--jobs N` aggregate
 * identical per-netlist results. Damaged corpus files are skipped
 * by the reader (with a warning); pipeline failures are contained
 * to their entry and summarized.
 */

#ifndef PARCHMINT_GEN_CORPUS_RUN_HH
#define PARCHMINT_GEN_CORPUS_RUN_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace parchmint::gen
{

/** Sweep configuration. */
struct CorpusRunOptions
{
    /** Worker threads; 0 = one. */
    size_t jobs = 1;
    /** Sweep seed; per-netlist annealing streams derive from it
     * and the device name. */
    uint64_t seed = 1;
    /** Run the best-effort mixing solve after validation. */
    bool simulate = false;
    /** Netlists resident at once; 0 = max(4 x jobs, 8). */
    size_t window = 0;
    /** Stop after this many intact entries; 0 = all. */
    size_t limit = 0;
    /** Per-entry pipeline deadline; zero = none. */
    std::chrono::milliseconds deadline{0};
};

/** Aggregate sweep outcome (per-entry state is not retained). */
struct CorpusRunSummary
{
    /** Intact entries attempted. */
    size_t entries = 0;
    /** Entries the reader skipped (missing/corrupt files). */
    size_t skipped = 0;
    size_t okCount = 0;
    size_t failedCount = 0;
    /** Semantic-rule totals across all validated entries. */
    uint64_t issueErrors = 0;
    uint64_t issueWarnings = 0;
    uint64_t components = 0;
    uint64_t connections = 0;
    uint64_t routedNets = 0;
    uint64_t totalNets = 0;
    int64_t routedLength = 0;
    uint64_t routeViolations = 0;
    int64_t hpwl = 0;
    /** Entries whose mixing solve converged (simulate only). */
    size_t simSolved = 0;
    /** Largest window actually materialized. */
    size_t peakWindow = 0;
    size_t workers = 0;
    int64_t wallUs = 0;
    /** "name: reason" lines, capped at kMaxFailureLines. */
    std::vector<std::string> failures;
    /** Reader warnings, capped at kMaxFailureLines. */
    std::vector<std::string> warnings;

    static constexpr size_t kMaxFailureLines = 20;
};

/**
 * Stream the corpus at @p dir through the pipeline (see file
 * comment).
 *
 * @throws UserError when the corpus manifest is missing or
 *         malformed (per-entry problems never throw).
 */
CorpusRunSummary runCorpus(const std::string &dir,
                           const CorpusRunOptions &options);

} // namespace parchmint::gen

#endif // PARCHMINT_GEN_CORPUS_RUN_HH
