#include "gen/generator.hh"

#include <set>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "core/builder.hh"
#include "core/serialize.hh"
#include "json/write.hh"
#include "mint/write_mint.hh"

namespace parchmint::gen
{

namespace
{

/** Weighted entity draw. */
EntityKind
drawKind(Rng &rng, const std::vector<EntityWeight> &mix)
{
    uint64_t total = 0;
    for (const EntityWeight &entry : mix)
        total += entry.weight;
    uint64_t roll = rng.nextBelow(total);
    for (const EntityWeight &entry : mix) {
        if (roll < entry.weight)
            return entry.kind;
        roll -= entry.weight;
    }
    return mix.back().kind;
}

/** Functional component count drawn from the spec window. */
size_t
drawComponentCount(Rng &rng, const GenSpec &spec)
{
    return spec.minComponents +
           rng.nextBelow(spec.maxComponents - spec.minComponents +
                         1);
}

/** Inlet/outlet multiplicity drawn from the fan-out knob. */
size_t
drawFanout(Rng &rng, const GenSpec &spec)
{
    return 1 + rng.nextBelow(spec.maxFanout);
}

/** Diverse but deterministic channel width in micrometers. */
int64_t
drawWidth(Rng &rng)
{
    return 200 + 100 * static_cast<int64_t>(rng.nextBelow(5));
}

std::string
comp(size_t i)
{
    return "n" + std::to_string(i);
}

/**
 * Series pipeline: inlet -> n mixed components -> outlet, with up
 * to fanout-1 tap outlets off evenly spaced intermediates.
 */
void
expandChain(DeviceBuilder &builder, Rng &rng, const GenSpec &spec,
            const std::vector<EntityWeight> &mix)
{
    size_t n = drawComponentCount(rng, spec);
    size_t fanout = drawFanout(rng, spec);
    for (size_t i = 0; i < n; ++i)
        builder.component(comp(i), drawKind(rng, mix));
    builder.component("in0", EntityKind::Port)
        .component("out0", EntityKind::Port)
        .channel("c_in0", "in0.1", comp(0) + ".1", drawWidth(rng));
    for (size_t i = 0; i + 1 < n; ++i)
        builder.channel("c" + std::to_string(i), comp(i) + ".2",
                        comp(i + 1) + ".1", drawWidth(rng));
    builder.channel("c_out0", comp(n - 1) + ".2", "out0.1",
                    drawWidth(rng));
    for (size_t t = 1; t < fanout && n > 1; ++t) {
        size_t pos = t * (n - 1) / fanout;
        const std::string tap = "tap" + std::to_string(t);
        builder.component(tap, EntityKind::Port)
            .channel("c_" + tap, comp(pos) + ".2", tap + ".1",
                     drawWidth(rng));
    }
}

/**
 * Planar mesh: rows x cols mixed cells wired east and south, west
 * inlets on the top rows and east outlets on the bottom rows (so
 * the sink row always drains).
 */
void
expandGrid(DeviceBuilder &builder, Rng &rng, const GenSpec &spec,
           const std::vector<EntityWeight> &mix)
{
    size_t n = drawComponentCount(rng, spec);
    size_t rows = 1;
    while ((rows + 1) * (rows + 1) <= n)
        ++rows;
    size_t cols = n / rows;
    if (cols < 1)
        cols = 1;

    auto cell = [](size_t r, size_t c) {
        return "g" + std::to_string(r) + "_" + std::to_string(c);
    };
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c)
            builder.component(cell(r, c), drawKind(rng, mix));
    }
    size_t io = drawFanout(rng, spec);
    if (io > rows)
        io = rows;
    for (size_t t = 0; t < io; ++t) {
        const std::string in_id = "in" + std::to_string(t);
        const std::string out_id = "out" + std::to_string(t);
        size_t in_row = t;
        size_t out_row = rows - 1 - t;
        builder.component(in_id, EntityKind::Port)
            .component(out_id, EntityKind::Port)
            .channel("c_" + in_id, in_id + ".1",
                     cell(in_row, 0) + ".1", drawWidth(rng))
            .channel("c_" + out_id, cell(out_row, cols - 1) + ".2",
                     out_id + ".1", drawWidth(rng));
    }
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                builder.channel("c_e_" + cell(r, c),
                                cell(r, c) + ".2",
                                cell(r, c + 1) + ".1",
                                drawWidth(rng));
            if (r + 1 < rows)
                builder.channel("c_s_" + cell(r, c),
                                cell(r, c) + ".2",
                                cell(r + 1, c) + ".1",
                                drawWidth(rng));
        }
    }
}

/**
 * Splitting tree: TREE interiors, one mixed component behind every
 * leaf split, each draining to its own outlet.
 */
void
expandTree(DeviceBuilder &builder, Rng &rng, const GenSpec &spec,
           const std::vector<EntityWeight> &mix)
{
    // Interiors (2^d - 1) plus leaves (2^d) must fit the drawn
    // window; the smallest tree (depth 1) has 3 functional
    // components.
    size_t n = drawComponentCount(rng, spec);
    size_t depth = 1;
    while (((size_t(1) << (depth + 2)) - 1) <= n)
        ++depth;

    auto node = [](size_t level, size_t index) {
        return "t" + std::to_string(level) + "_" +
               std::to_string(index);
    };
    builder.component("in0", EntityKind::Port);
    for (size_t level = 0; level < depth; ++level) {
        size_t width = size_t(1) << level;
        for (size_t i = 0; i < width; ++i)
            builder.component(node(level, i), EntityKind::Tree);
    }
    builder.channel("c_root", "in0.1", node(0, 0) + ".1",
                    drawWidth(rng));
    for (size_t level = 0; level + 1 < depth; ++level) {
        size_t width = size_t(1) << level;
        for (size_t i = 0; i < width; ++i) {
            builder.channel("c_l_" + node(level, i),
                            node(level, i) + ".2",
                            node(level + 1, 2 * i) + ".1",
                            drawWidth(rng));
            builder.channel("c_r_" + node(level, i),
                            node(level, i) + ".3",
                            node(level + 1, 2 * i + 1) + ".1",
                            drawWidth(rng));
        }
    }
    size_t leaf_level = depth - 1;
    size_t width = size_t(1) << leaf_level;
    for (size_t i = 0; i < width; ++i) {
        for (size_t branch = 0; branch < 2; ++branch) {
            const std::string tag = std::to_string(2 * i + branch);
            const std::string leaf = "leaf" + tag;
            const std::string out = "out" + tag;
            builder.component(leaf, drawKind(rng, mix))
                .component(out, EntityKind::Port)
                .channel("c_" + leaf,
                         node(leaf_level, i) + "." +
                             std::to_string(2 + branch),
                         leaf + ".1", drawWidth(rng))
                .channel("c_" + out, leaf + ".2", out + ".1",
                         drawWidth(rng));
        }
    }
}

/**
 * Dilution-style ladder: a series spine alternating MIXER stages
 * (each with its own buffer inlet) and mixed payload stages, with
 * waste taps off evenly spaced stages.
 */
void
expandLadder(DeviceBuilder &builder, Rng &rng, const GenSpec &spec,
             const std::vector<EntityWeight> &mix)
{
    size_t n = drawComponentCount(rng, spec);
    size_t fanout = drawFanout(rng, spec);
    for (size_t i = 0; i < n; ++i) {
        bool mixer_stage = (i % 2 == 0);
        builder.component(comp(i), mixer_stage
                                       ? EntityKind::Mixer
                                       : drawKind(rng, mix));
        if (mixer_stage) {
            const std::string buffer = "buf" + std::to_string(i);
            builder.component(buffer, EntityKind::Port)
                .channel("c_" + buffer, buffer + ".1",
                         comp(i) + ".1", drawWidth(rng));
        }
    }
    builder.component("sample", EntityKind::Port)
        .component("product", EntityKind::Port)
        .channel("c_sample", "sample.1", comp(0) + ".1",
                 drawWidth(rng));
    for (size_t i = 0; i + 1 < n; ++i)
        builder.channel("c" + std::to_string(i), comp(i) + ".2",
                        comp(i + 1) + ".1", drawWidth(rng));
    builder.channel("c_product", comp(n - 1) + ".2", "product.1",
                    drawWidth(rng));
    for (size_t t = 1; t < fanout && n > 1; ++t) {
        size_t pos = t * (n - 1) / fanout;
        const std::string waste = "waste" + std::to_string(t);
        builder.component(waste, EntityKind::Port)
            .channel("c_" + waste, comp(pos) + ".2", waste + ".1",
                     drawWidth(rng));
    }
}

/**
 * Ranked random DAG: a random spanning tree keeps the netlist
 * connected; extra edges always point from lower to higher rank
 * (acyclic by construction) and respect the fan-out cap.
 */
void
expandRandomDag(DeviceBuilder &builder, Rng &rng,
                const GenSpec &spec,
                const std::vector<EntityWeight> &mix)
{
    size_t n = drawComponentCount(rng, spec);
    size_t fanout = drawFanout(rng, spec);
    for (size_t i = 0; i < n; ++i)
        builder.component(comp(i), drawKind(rng, mix));

    std::set<std::pair<size_t, size_t>> edges;
    std::vector<size_t> out_degree(n, 0);
    size_t channel_count = 0;
    auto add_edge = [&](size_t a, size_t b) {
        builder.channel("c" + std::to_string(channel_count++),
                        comp(a) + ".2", comp(b) + ".1",
                        drawWidth(rng));
        edges.insert({a, b});
        ++out_degree[a];
    };
    for (size_t i = 1; i < n; ++i)
        add_edge(rng.nextBelow(i), i);
    for (size_t k = 0; k < n; ++k) {
        size_t a = rng.nextBelow(n);
        size_t b = rng.nextBelow(n);
        if (a == b)
            continue;
        if (a > b)
            std::swap(a, b);
        if (out_degree[a] >= fanout + 1 || edges.count({a, b}))
            continue;
        add_edge(a, b);
    }

    builder.component("in0", EntityKind::Port)
        .channel("c_in0", "in0.1", comp(0) + ".1", drawWidth(rng));
    for (size_t t = 1; t < fanout && n > 1; ++t) {
        size_t pos = t * (n - 1) / fanout;
        const std::string in_id = "in" + std::to_string(t);
        builder.component(in_id, EntityKind::Port)
            .channel("c_" + in_id, in_id + ".1",
                     comp(pos) + ".1", drawWidth(rng));
    }
    // Component n-1 never sources an extra edge (they point to
    // higher ranks), so at least one sink always exists.
    size_t outlets = 0;
    for (size_t i = n; i-- > 0 && outlets < fanout;) {
        if (out_degree[i] != 0)
            continue;
        const std::string out_id = "out" + std::to_string(outlets++);
        builder.component(out_id, EntityKind::Port)
            .channel("c_" + out_id, comp(i) + ".2", out_id + ".1",
                     drawWidth(rng));
    }
}

} // namespace

std::string
generatedName(const GenSpec &spec, size_t index)
{
    return spec.name + "_" + familyName(spec.family) + "_s" +
           std::to_string(spec.seed) + "_i" + std::to_string(index);
}

Device
generateNetlist(const GenSpec &spec, size_t index)
{
    const std::string name = generatedName(spec, index);
    Rng rng(deriveSeed(spec.seed, name));
    DeviceBuilder builder(name);
    builder.flowLayer();
    builder.param("generator",
                  json::Value(std::string("gen/") +
                              familyName(spec.family)));
    builder.param("gen_spec", json::Value(spec.name));
    builder.param("gen_seed",
                  json::Value(static_cast<int64_t>(spec.seed)));
    builder.param("gen_index",
                  json::Value(static_cast<int64_t>(index)));

    const std::vector<EntityWeight> &mix =
        spec.entityMix.empty() ? defaultEntityMix() : spec.entityMix;
    switch (spec.family) {
    case Family::Chain:
        expandChain(builder, rng, spec, mix);
        break;
    case Family::Grid:
        expandGrid(builder, rng, spec, mix);
        break;
    case Family::Tree:
        expandTree(builder, rng, spec, mix);
        break;
    case Family::Ladder:
        expandLadder(builder, rng, spec, mix);
        break;
    case Family::RandomDag:
        expandRandomDag(builder, rng, spec, mix);
        break;
    }
    return builder.build();
}

std::string
generateNetlistText(const GenSpec &spec, size_t index)
{
    json::WriteOptions options;
    options.pretty = false;
    options.asciiOnly = true;
    return json::write(toJson(generateNetlist(spec, index)),
                       options);
}

std::string
generateMintText(const GenSpec &spec, size_t index)
{
    return mint::renderMint(generateNetlist(spec, index)).text;
}

} // namespace parchmint::gen
