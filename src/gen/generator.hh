/**
 * @file
 * The grammar-driven netlist generator.
 *
 * Each Family in gen/spec.hh is a small template grammar expanded
 * under a deterministic RNG: the spec's size window draws the
 * functional component count, the entity mix draws component
 * kinds, and the fan-out knob controls inlet/outlet/tap counts.
 * I/O Port components ride on top of the functional-component
 * window — the window sizes the interesting part of the netlist.
 *
 * Seeding contract: instance @c index of spec @c S uses
 * @c Rng(deriveSeed(S.seed, generatedName(S, index))) and nothing
 * else, so generating instance 7 never requires generating
 * instances 0..6 and a corpus sharded across `--jobs N` workers is
 * byte-identical to a sequential run. The device name embeds the
 * spec name, family, seed and index, which also keeps downstream
 * name-seeded stages (the annealing placer) deterministic per
 * instance.
 *
 * Every emitted netlist is valid by construction: catalogue
 * entities only, channels between declared flow ports, connected
 * flow graphs — the gen_spec fuzz target re-checks this against
 * the full validation pipeline for every spec it can parse.
 */

#ifndef PARCHMINT_GEN_GENERATOR_HH
#define PARCHMINT_GEN_GENERATOR_HH

#include <cstddef>
#include <string>

#include "core/device.hh"
#include "gen/spec.hh"

namespace parchmint::gen
{

/** The deterministic device name of instance @p index:
 * "<name>_<family>_s<seed>_i<index>". */
std::string generatedName(const GenSpec &spec, size_t index);

/**
 * Expand instance @p index of @p spec. Deterministic: the same
 * (spec, index) yields the same Device on every platform, in any
 * order, under any parallelism. @p index is normally below
 * spec.count, but any index expands deterministically.
 */
Device generateNetlist(const GenSpec &spec, size_t index);

/**
 * generateNetlist rendered as canonical ParchMint JSON text
 * (compact, ASCII-only) — the exact bytes the corpus stores and
 * content-addresses.
 */
std::string generateNetlistText(const GenSpec &spec, size_t index);

/** generateNetlist rendered as MINT source (mint/write_mint.hh). */
std::string generateMintText(const GenSpec &spec, size_t index);

} // namespace parchmint::gen

#endif // PARCHMINT_GEN_GENERATOR_HH
