/**
 * @file
 * Steady-state concentration/mixing analysis of flow-layer
 * netlists (after Luu & Chrobak, "Modeling Fluid Mixing in
 * Microfluidic Grids").
 *
 * Rides the hydraulic resistor-network solve (sim/hydraulic.hh):
 * once per-channel volumetric flows are known, solute transport at
 * every junction is a linear balance — the concentration leaving a
 * node is the flow-weighted average of the concentrations entering
 * it. That balance over all interior nodes is a second linear
 * system, solved with the same dense LU kernel
 * (sim/linear_solver.hh), which handles recirculating grids that a
 * simple topological sweep cannot.
 *
 * Inlet/outlet selection reuses the suite-wide port-ID heuristic
 * (classifyFlowPorts): ports named like inputs are pressurized and
 * carry prescribed concentrations, the remaining flow ports are
 * grounded and report the mixed profile.
 */

#ifndef PARCHMINT_SIM_MIXING_HH
#define PARCHMINT_SIM_MIXING_HH

#include <map>
#include <string>
#include <vector>

#include "core/device.hh"
#include "sim/hydraulic.hh"

namespace parchmint::sim
{

/** Flow-layer PORT components split into inlets and outlets. */
struct PortPartition
{
    /** IDs that look like supplies (in/inlet/supply/sample/...),
     * in device component order. */
    std::vector<std::string> inlets;
    /** The remaining flow-layer ports, in component order. */
    std::vector<std::string> outlets;
};

/**
 * Classify a device's flow-layer PORT components with the same ID-
 * prefix heuristic the suite runner and simulate example use, so
 * every consumer agrees on which ports drive and which drain.
 */
PortPartition classifyFlowPorts(const Device &device);

/** Mixing-solver knobs. */
struct MixingOptions
{
    /** Hydraulic model knobs (viscosity, nominal length, ...). */
    HydraulicOptions hydraulic;
    /** Pressure applied at every inlet port, Pa (outlets sit at
     * atmospheric zero). */
    double inletPressurePa = 20000.0;
};

/** Concentration profile at one outlet port. */
struct OutletProfile
{
    std::string portId;
    /** Steady-state solute concentration, in [0, 1]. */
    double concentration = 0.0;
    /** Volumetric outflow through the port, m^3/s. */
    double outflow = 0.0;
};

/** Result of a mixing solve. */
struct MixingResult
{
    /** Per-outlet profiles, in device component order. */
    std::vector<OutletProfile> outlets;
    /**
     * Outlet uniformity index in [0, 1]: one minus the flow-
     * weighted coefficient of variation of the outlet
     * concentrations, clamped. 1 = perfectly mixed (every outlet
     * sees the same concentration), lower = a gradient survives.
     */
    double mixingQuality = 0.0;
    /** Flow-weighted mean outlet concentration. */
    double meanConcentration = 0.0;
    /** Pressure nodes in the hydraulic model. */
    size_t nodes = 0;
    /** Resistor edges in the hydraulic model. */
    size_t edges = 0;
    /** Inlet port count. */
    size_t inlets = 0;
    /** Components excluded as hydraulically floating. */
    size_t floating = 0;
};

/**
 * Solve the steady-state concentration field of @p device.
 *
 * @param device The netlist; routed paths refine channel lengths
 *        when present.
 * @param inlet_concentrations Prescribed concentration per inlet
 *        port ID, each in [0, 1]. Inlets not named default to 0;
 *        when the map is empty, inlets alternate 1, 0, 1, ... in
 *        component order (the canonical two-reagent experiment).
 * @param options Solver knobs.
 * @throws UserError when the device has no flow layer, no inlet or
 *         no outlet ports, a named port is not an inlet, a
 *         concentration is non-finite or outside [0, 1], or the
 *         junction balance is singular.
 */
MixingResult
solveMixing(const Device &device,
            const std::map<std::string, double>
                &inlet_concentrations = {},
            const MixingOptions &options = {});

} // namespace parchmint::sim

#endif // PARCHMINT_SIM_MIXING_HH
