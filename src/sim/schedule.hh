/**
 * @file
 * Flow-path scheduling over routed netlists (after Zhu et al.,
 * "Transport or Store?": distributed channel storage in
 * continuous-flow biochips).
 *
 * Every (connection, sink) pair of the flow layer is one transport
 * operation whose duration scales with its routed channel length
 * (nominal length before routing). Operations are ordered by a
 * BFS depth from the inlet ports — an op entering a component
 * waits for the ops feeding that component from shallower depth,
 * which breaks grid cycles deterministically — and dispatched by a
 * K-way list scheduler modeling a pressure manifold that can drive
 * only K concurrent transports. Afterwards each op is classified
 * transport-vs-store: an op whose product sits in its channel
 * waiting for a downstream consumer is a *store*, and the number
 * of distinct channels ever used as storage is the
 * storage-channel count the paper's quality story ranks.
 */

#ifndef PARCHMINT_SIM_SCHEDULE_HH
#define PARCHMINT_SIM_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/device.hh"

namespace parchmint::sim
{

/** Scheduler knobs. */
struct ScheduleOptions
{
    /** Concurrent transports the manifold drives (>= 1). */
    size_t concurrency = 2;
    /** Micrometers of channel advanced per time unit. */
    int64_t lengthPerUnit = 1000;
    /** Length assumed for unrouted channels, um. */
    int64_t nominalChannelLength = 5000;
};

/** One scheduled transport operation. */
struct TransportOp
{
    std::string connectionId;
    size_t sinkIndex = 0;
    std::string sourceId;
    std::string sinkId;
    /** Transport time, in scheduler time units (>= 1). */
    int64_t duration = 0;
    int64_t start = 0;
    int64_t end = 0;
    /** True when the product waits in its channel for the first
     * consumer (distributed channel storage). */
    bool stored = false;
    /** Time units spent stored (0 when not stored). */
    int64_t storedUnits = 0;
};

/** Result of a scheduling pass. */
struct ScheduleResult
{
    /** Ops in connection/sink declaration order. */
    std::vector<TransportOp> ops;
    int64_t makespan = 0;
    /** Ops classified as stores. */
    size_t storedOps = 0;
    /** Distinct channels ever used as storage. */
    size_t storageChannels = 0;
    /** Total busy time / (concurrency * makespan), in (0, 1]. */
    double utilization = 0.0;
};

/**
 * Schedule the flow layer of @p device.
 * @throws UserError when the device has no flow layer, no
 *         transport operations, or concurrency is zero.
 */
ScheduleResult scheduleFlows(const Device &device,
                             const ScheduleOptions &options = {});

} // namespace parchmint::sim

#endif // PARCHMINT_SIM_SCHEDULE_HH
