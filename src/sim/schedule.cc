#include "sim/schedule.hh"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hh"
#include "obs/obs.hh"
#include "sim/mixing.hh"

namespace parchmint::sim
{

namespace
{

/** Routed path length for one sink; nominal when unrouted. */
int64_t
channelLength(const Connection &connection,
              const ConnectionTarget &sink,
              const ScheduleOptions &options)
{
    for (const ChannelPath &path : connection.paths()) {
        if (path.sink.componentId == sink.componentId &&
            (!sink.portLabel || !path.sink.portLabel ||
             *path.sink.portLabel == *sink.portLabel)) {
            return path.length();
        }
    }
    return options.nominalChannelLength;
}

} // namespace

ScheduleResult
scheduleFlows(const Device &device,
              const ScheduleOptions &options)
{
    PM_OBS_SPAN("sim.schedule", "sim");
    if (options.concurrency == 0)
        fatal("schedule: concurrency must be >= 1");
    if (options.lengthPerUnit <= 0)
        fatal("schedule: lengthPerUnit must be >= 1");
    const Layer *flow = device.firstLayer(LayerType::Flow);
    if (!flow)
        fatal("schedule: device has no flow layer");

    // Transport operations: one per (connection, sink) pair whose
    // endpoints resolve (dangling references are the rule
    // checker's finding, not the scheduler's).
    ScheduleResult result;
    for (const Connection &connection : device.connections()) {
        if (connection.layerId() != flow->id)
            continue;
        if (!device.findComponent(
                connection.source().componentId))
            continue;
        for (size_t s = 0; s < connection.sinks().size(); ++s) {
            const ConnectionTarget &sink =
                connection.sinks()[s];
            if (!device.findComponent(sink.componentId))
                continue;
            TransportOp op;
            op.connectionId = connection.id();
            op.sinkIndex = s;
            op.sourceId = connection.source().componentId;
            op.sinkId = sink.componentId;
            int64_t length =
                channelLength(connection, sink, options);
            op.duration = std::max<int64_t>(
                1, (length + options.lengthPerUnit - 1) /
                       options.lengthPerUnit);
            result.ops.push_back(std::move(op));
        }
    }
    if (result.ops.empty())
        fatal("schedule: flow layer has no transport operations");

    // BFS depth from the inlet ports along source -> sink edges.
    // Unreached components rank last and carry no dependencies.
    const int64_t unreachable =
        std::numeric_limits<int64_t>::max();
    std::unordered_map<std::string, int64_t> depth;
    std::unordered_map<std::string, std::vector<std::string>>
        downstream;
    for (const TransportOp &op : result.ops)
        downstream[op.sourceId].push_back(op.sinkId);
    std::deque<std::string> frontier;
    PortPartition ports = classifyFlowPorts(device);
    std::vector<std::string> roots =
        ports.inlets.empty() ? ports.outlets : ports.inlets;
    if (roots.empty()) {
        // Portless device: every source component is a root.
        std::set<std::string> sources;
        for (const TransportOp &op : result.ops)
            sources.insert(op.sourceId);
        roots.assign(sources.begin(), sources.end());
    }
    for (const std::string &id : roots) {
        if (depth.emplace(id, 0).second)
            frontier.push_back(id);
    }
    while (!frontier.empty()) {
        std::string id = frontier.front();
        frontier.pop_front();
        int64_t next = depth.at(id) + 1;
        for (const std::string &sink : downstream[id]) {
            if (depth.emplace(sink, next).second)
                frontier.push_back(sink);
        }
    }
    auto depth_of = [&](const std::string &id) {
        auto it = depth.find(id);
        return it == depth.end() ? unreachable : it->second;
    };

    // Dependencies: op (u -> v) waits for every op (w -> u) with
    // depth(w) < depth(u). The strict decrease breaks grid cycles:
    // any dependency chain strictly lowers the source depth, so
    // the precedence graph is acyclic by construction.
    size_t n = result.ops.size();
    std::unordered_map<std::string, std::vector<size_t>> ops_into;
    for (size_t i = 0; i < n; ++i)
        ops_into[result.ops[i].sinkId].push_back(i);
    std::vector<std::vector<size_t>> dependents(n);
    std::vector<size_t> waiting(n, 0);
    for (size_t i = 0; i < n; ++i) {
        const TransportOp &op = result.ops[i];
        int64_t source_depth = depth_of(op.sourceId);
        if (source_depth == 0 || source_depth == unreachable)
            continue;
        auto feeders = ops_into.find(op.sourceId);
        if (feeders == ops_into.end())
            continue;
        for (size_t f : feeders->second) {
            if (depth_of(result.ops[f].sourceId) < source_depth) {
                dependents[f].push_back(i);
                ++waiting[i];
            }
        }
    }

    // K-way list schedule: ready ops start in (source depth,
    // declaration order) priority as manifold slots free up.
    auto priority = [&](size_t i) {
        return std::make_pair(depth_of(result.ops[i].sourceId),
                              i);
    };
    std::set<std::pair<int64_t, size_t>> ready;
    for (size_t i = 0; i < n; ++i) {
        if (waiting[i] == 0)
            ready.insert(priority(i));
    }
    using Running = std::pair<int64_t, size_t>; // (end, op)
    std::priority_queue<Running, std::vector<Running>,
                        std::greater<Running>>
        running;
    int64_t now = 0;
    size_t done = 0;
    while (done < n) {
        while (running.size() < options.concurrency &&
               !ready.empty()) {
            size_t i = ready.begin()->second;
            ready.erase(ready.begin());
            result.ops[i].start = now;
            result.ops[i].end = now + result.ops[i].duration;
            running.emplace(result.ops[i].end, i);
        }
        if (running.empty())
            panic("schedule: stalled with ops outstanding");
        auto [end, finished] = running.top();
        running.pop();
        now = end;
        ++done;
        for (size_t dependent : dependents[finished]) {
            if (--waiting[dependent] == 0)
                ready.insert(priority(dependent));
        }
    }

    // Transport-vs-store: an op whose product out-waits its
    // earliest consumer's start parks in the channel — that
    // channel serves as distributed storage.
    std::set<std::string> storage_channels;
    int64_t busy = 0;
    for (size_t i = 0; i < n; ++i) {
        TransportOp &op = result.ops[i];
        result.makespan = std::max(result.makespan, op.end);
        busy += op.duration;
        if (dependents[i].empty())
            continue;
        int64_t first_consumer =
            std::numeric_limits<int64_t>::max();
        for (size_t dependent : dependents[i])
            first_consumer = std::min(
                first_consumer, result.ops[dependent].start);
        if (first_consumer > op.end) {
            op.stored = true;
            op.storedUnits = first_consumer - op.end;
            ++result.storedOps;
            storage_channels.insert(op.connectionId);
        }
    }
    result.storageChannels = storage_channels.size();
    result.utilization =
        static_cast<double>(busy) /
        (static_cast<double>(options.concurrency) *
         static_cast<double>(result.makespan));

    PM_OBS_COUNT("sim.schedule.runs", 1);
    PM_OBS_COUNT("sim.schedule.ops", result.ops.size());
    PM_OBS_GAUGE("sim.schedule.makespan", result.makespan);
    PM_OBS_GAUGE("sim.schedule.storage_channels",
                 result.storageChannels);
    PM_OBS_GAUGE("sim.schedule.utilization", result.utilization);
    return result;
}

} // namespace parchmint::sim
