#include "sim/linear_solver.hh"

#include <cmath>

#include "common/error.hh"
#include "obs/clock.hh"
#include "obs/obs.hh"

namespace parchmint::sim
{

Matrix::Matrix(size_t n)
    : n_(n), cells_(n * n, 0.0)
{
}

double &
Matrix::at(size_t row, size_t col)
{
    if (row >= n_ || col >= n_)
        panic("Matrix::at out of range");
    return cells_[row * n_ + col];
}

double
Matrix::at(size_t row, size_t col) const
{
    if (row >= n_ || col >= n_)
        panic("Matrix::at out of range");
    return cells_[row * n_ + col];
}

std::vector<double>
solveLinearSystem(Matrix a, std::vector<double> b)
{
    PM_OBS_SPAN("sim.lu", "sim");
    size_t n = a.size();
    if (b.size() != n)
        panic("solveLinearSystem: dimension mismatch");
    obs::Stopwatch lu_watch;
    PM_OBS_COUNT("sim.lu.solves", 1);
    PM_OBS_GAUGE("sim.lu.matrix_size", n);
    PM_OBS_HIST("sim.lu.matrix_size", n);

    // Forward elimination with partial pivoting.
    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        double best = std::fabs(a.at(col, col));
        for (size_t row = col + 1; row < n; ++row) {
            double candidate = std::fabs(a.at(row, col));
            if (candidate > best) {
                best = candidate;
                pivot = row;
            }
        }
        if (best < 1e-300)
            fatal("hydraulic system is singular: a node has no "
                  "path to any pressure boundary");
        if (pivot != col) {
            for (size_t k = 0; k < n; ++k)
                std::swap(a.at(col, k), a.at(pivot, k));
            std::swap(b[col], b[pivot]);
        }
        for (size_t row = col + 1; row < n; ++row) {
            double factor = a.at(row, col) / a.at(col, col);
            if (factor == 0.0)
                continue;
            for (size_t k = col; k < n; ++k)
                a.at(row, k) -= factor * a.at(col, k);
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    std::vector<double> x(n, 0.0);
    for (size_t row_plus1 = n; row_plus1 > 0; --row_plus1) {
        size_t row = row_plus1 - 1;
        double sum = b[row];
        for (size_t k = row + 1; k < n; ++k)
            sum -= a.at(row, k) * x[k];
        x[row] = sum / a.at(row, row);
    }
    PM_OBS_HIST("sim.lu_ms", lu_watch.elapsedMs());
    return x;
}

} // namespace parchmint::sim
