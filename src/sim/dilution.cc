#include "sim/dilution.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hh"
#include "core/builder.hh"
#include "obs/obs.hh"

namespace parchmint::sim
{

namespace
{

/**
 * Stern-Brocot walk: the fraction with the smallest denominator
 * inside [lo, hi] (0 <= lo <= hi <= 1 and the window is known
 * non-empty). Runs of same-direction mediant steps are batched so
 * narrow windows near the ends of [0, 1] stay cheap.
 */
void
fareySearch(double lo, double hi, uint64_t &numerator,
            uint64_t &denominator)
{
    if (lo <= 0.0) {
        numerator = 0;
        denominator = 1;
        return;
    }
    if (hi >= 1.0) {
        numerator = 1;
        denominator = 1;
        return;
    }
    uint64_t ln = 0;
    uint64_t ld = 1;
    uint64_t hn = 1;
    uint64_t hd = 1;
    for (int guard = 0; guard < 128; ++guard) {
        uint64_t mn = ln + hn;
        uint64_t md = ld + hd;
        double mediant =
            static_cast<double>(mn) / static_cast<double>(md);
        if (mediant < lo) {
            // Batch the right-steps: the largest k keeping
            // (ln + k*hn) / (ld + k*hd) below the window.
            uint64_t k = 1;
            double slope = static_cast<double>(hn) -
                           lo * static_cast<double>(hd);
            if (slope > 0.0) {
                double steps = std::floor(
                    (lo * static_cast<double>(ld) -
                     static_cast<double>(ln)) /
                    slope);
                if (steps > 1.0)
                    k = static_cast<uint64_t>(steps);
            }
            while (k > 1 &&
                   static_cast<double>(ln + k * hn) >=
                       lo * static_cast<double>(ld + k * hd))
                --k;
            ln += k * hn;
            ld += k * hd;
        } else if (mediant > hi) {
            uint64_t k = 1;
            double slope = hi * static_cast<double>(ld) -
                           static_cast<double>(ln);
            if (slope > 0.0) {
                double steps = std::floor(
                    (static_cast<double>(hn) -
                     hi * static_cast<double>(hd)) /
                    slope);
                if (steps > 1.0)
                    k = static_cast<uint64_t>(steps);
            }
            while (k > 1 &&
                   static_cast<double>(hn + k * ln) <=
                       hi * static_cast<double>(hd + k * ld))
                --k;
            hn += k * ln;
            hd += k * ld;
        } else {
            numerator = mn;
            denominator = md;
            return;
        }
    }
    // Floating-point corner: leave the caller's dyadic fallback.
}

double
requireFiniteNumber(const json::Value &document, const char *key,
                    double fallback, bool required)
{
    const json::Value *member = document.find(key);
    if (!member) {
        if (required)
            fatal(std::string("dilution spec: missing \"") + key +
                  "\"");
        return fallback;
    }
    if (!member->isNumber())
        fatal(std::string("dilution spec: \"") + key +
              "\" must be a number");
    double value = member->asDouble();
    if (!std::isfinite(value))
        fatal(std::string("dilution spec: \"") + key +
              "\" must be finite");
    return value;
}

} // namespace

DilutionSpec
parseDilutionSpec(const json::Value &document)
{
    if (!document.isObject())
        fatal("dilution spec: document must be a JSON object");
    DilutionSpec spec;
    spec.target =
        requireFiniteNumber(document, "target", 0.0, true);
    spec.tolerance = requireFiniteNumber(document, "tolerance",
                                         spec.tolerance, false);
    const json::Value *depth = document.find("max_depth");
    if (depth) {
        if (!depth->isInteger())
            fatal("dilution spec: \"max_depth\" must be an "
                  "integer");
        int64_t value = depth->asInteger();
        if (value < 1 || value > 30)
            fatal("dilution spec: \"max_depth\" must be in "
                  "[1, 30]");
        spec.maxDepth = static_cast<size_t>(value);
    }
    if (spec.target < 0.0 || spec.target > 1.0)
        fatal("dilution spec: \"target\" must be in [0, 1]");
    if (spec.tolerance <= 0.0 || spec.tolerance > 1.0)
        fatal("dilution spec: \"tolerance\" must be in (0, 1]");
    if (spec.maxDepth < 1 || spec.maxDepth > 30)
        fatal("dilution spec: \"max_depth\" must be in [1, 30]");
    return spec;
}

DilutionPlan
synthesizeDilution(const DilutionSpec &spec)
{
    PM_OBS_SPAN("sim.dilute", "sim");
    if (!std::isfinite(spec.target) || spec.target < 0.0 ||
        spec.target > 1.0)
        fatal("dilution: target must be a finite number in "
              "[0, 1]");
    if (!std::isfinite(spec.tolerance) || spec.tolerance <= 0.0 ||
        spec.tolerance > 1.0)
        fatal("dilution: tolerance must be in (0, 1]");
    if (spec.maxDepth < 1 || spec.maxDepth > 30)
        fatal("dilution: maxDepth must be in [1, 30]");

    // Shallowest ladder first: a depth-d ladder realizes exactly
    // the dyadics a/2^d, so scan d upward for the first whose
    // nearest dyadic is inside the tolerance.
    DilutionPlan plan;
    bool found = false;
    for (size_t d = 0; d <= spec.maxDepth; ++d) {
        uint64_t scale = uint64_t{1} << d;
        double exact = spec.target * static_cast<double>(scale);
        uint64_t nearest = static_cast<uint64_t>(
            std::llround(std::max(0.0, exact)));
        if (nearest > scale)
            nearest = scale;
        double achieved = static_cast<double>(nearest) /
                          static_cast<double>(scale);
        double error = std::fabs(achieved - spec.target);
        if (error <= spec.tolerance) {
            plan.numerator = nearest;
            plan.depth = d;
            plan.achieved = achieved;
            plan.error = error;
            found = true;
            break;
        }
    }
    if (!found)
        fatal("dilution: target " + std::to_string(spec.target) +
              " unreachable within tolerance " +
              std::to_string(spec.tolerance) + " at max depth " +
              std::to_string(spec.maxDepth));

    // Minimal-denominator fraction inside the window, seeded with
    // the dyadic as the fallback answer.
    plan.fareyNumerator = plan.numerator;
    plan.fareyDenominator = uint64_t{1} << plan.depth;
    fareySearch(spec.target - spec.tolerance,
                spec.target + spec.tolerance, plan.fareyNumerator,
                plan.fareyDenominator);

    // Decode the ladder loads x_0..x_d (achieved =
    // (x_0 + sum_k x_k 2^{k-1}) / 2^d): x_0 pairs with x_1 at the
    // first mixer, every later mixer folds the previous output
    // with one fresh load.
    size_t d = plan.depth;
    uint64_t a = plan.numerator;
    uint64_t scale = uint64_t{1} << d;
    std::vector<int> loads(d + 1, 0);
    if (a == scale) {
        for (int &load : loads)
            load = 1;
    } else {
        loads[0] = static_cast<int>(a & 1);
        uint64_t rest = a - (a & 1);
        for (size_t k = 1; k <= d; ++k)
            loads[k] =
                static_cast<int>((rest >> (k - 1)) & 1);
    }
    for (int load : loads)
        (load != 0 ? plan.reagentUnits : plan.bufferUnits) += 1;

    // Emit the plan as a ParchMint netlist: reagent/buffer ports
    // (classified as inlets by the suite heuristic), one MIXER per
    // ladder stage, both stage inputs feeding port 1, the blend
    // leaving port 2, and an "out" port reporting the product.
    DeviceBuilder builder("dilution_" +
                          std::to_string(plan.numerator) + "_of_" +
                          std::to_string(scale));
    builder.flowLayer();
    bool uses_reagent = plan.reagentUnits > 0;
    bool uses_buffer = plan.bufferUnits > 0;
    if (uses_reagent)
        builder.component("reagent", EntityKind::Port);
    if (uses_buffer)
        builder.component("buffer", EntityKind::Port);
    builder.component("out", EntityKind::Port);
    auto load_source = [](int load) {
        return load != 0 ? "reagent.1" : "buffer.1";
    };
    if (d == 0) {
        builder.channel("c0", load_source(loads[0]), "out.1");
    } else {
        for (size_t k = 1; k <= d; ++k) {
            std::string stage = std::to_string(k);
            builder.component("m" + stage, EntityKind::Mixer);
        }
        builder.channel("c0", load_source(loads[0]), "m1.1");
        builder.channel("c1", load_source(loads[1]), "m1.1");
        for (size_t k = 2; k <= d; ++k) {
            std::string stage = std::to_string(k);
            std::string previous = std::to_string(k - 1);
            builder.channel("s" + stage, "m" + previous + ".2",
                            "m" + stage + ".1");
            builder.channel("c" + stage, load_source(loads[k]),
                            "m" + stage + ".1");
        }
        std::string last = std::to_string(d);
        builder.channel("cout", "m" + last + ".2", "out.1");
    }
    plan.netlist = builder.build();

    PM_OBS_COUNT("sim.dilute.syntheses", 1);
    PM_OBS_COUNT("sim.dilute.mixers", plan.depth);
    PM_OBS_COUNT("sim.dilute.reagent_units", plan.reagentUnits);
    PM_OBS_GAUGE("sim.dilute.depth", plan.depth);
    PM_OBS_GAUGE("sim.dilute.error", plan.error);
    return plan;
}

} // namespace parchmint::sim
