#include "sim/hydraulic.hh"

#include <cmath>
#include <deque>

#include "common/error.hh"
#include "obs/obs.hh"
#include "sim/linear_solver.hh"

namespace parchmint::sim
{

namespace
{

/**
 * Channel length for one sink of a connection: the routed path when
 * one exists, the nominal length otherwise.
 */
double
channelLength(const Connection &connection,
              const ConnectionTarget &sink,
              const HydraulicOptions &options)
{
    for (const ChannelPath &path : connection.paths()) {
        if (path.sink.componentId == sink.componentId &&
            (!sink.portLabel || !path.sink.portLabel ||
             *path.sink.portLabel == *sink.portLabel)) {
            return static_cast<double>(path.length());
        }
    }
    return static_cast<double>(options.nominalChannelLength);
}

} // namespace

double
HydraulicSolution::pressureAt(const std::string &component_id) const
{
    auto it = pressures_.find(component_id);
    if (it == pressures_.end())
        fatal("no solved pressure for component \"" + component_id +
              "\" (unknown or floating)");
    return it->second;
}

double
HydraulicSolution::flowThrough(const std::string &connection_id,
                               size_t sink_index) const
{
    for (size_t i = 0; i < edges_.size(); ++i) {
        if (edges_[i].connectionId == connection_id &&
            edges_[i].sinkIndex == sink_index) {
            return flows_[i];
        }
    }
    fatal("no flow edge for connection \"" + connection_id +
          "\" sink " + std::to_string(sink_index));
}

double
HydraulicSolution::netInflow(const std::string &component_id) const
{
    double total = 0.0;
    for (size_t i = 0; i < edges_.size(); ++i) {
        if (edges_[i].sinkId == component_id)
            total += flows_[i];
        if (edges_[i].sourceId == component_id)
            total -= flows_[i];
    }
    return total;
}

HydraulicModel
HydraulicModel::build(const Device &device,
                      const HydraulicOptions &options)
{
    PM_OBS_SPAN("sim.build_model", "sim");
    const Layer *flow = device.firstLayer(LayerType::Flow);
    if (!flow)
        fatal("hydraulic model: device has no flow layer");

    HydraulicModel model;
    for (const Component &component : device.components()) {
        if (!component.onLayer(flow->id))
            continue;
        model.nodeIndex_[component.id()] = model.nodes_.size();
        model.nodes_.push_back(component.id());
    }

    for (const Connection &connection : device.connections()) {
        if (connection.layerId() != flow->id)
            continue;
        const Component *source =
            device.findComponent(connection.source().componentId);
        if (!source)
            continue; // Rule checker reports dangling references.
        for (size_t s = 0; s < connection.sinks().size(); ++s) {
            const ConnectionTarget &sink_target =
                connection.sinks()[s];
            const Component *sink =
                device.findComponent(sink_target.componentId);
            if (!sink)
                continue;
            double length =
                channelLength(connection, sink_target, options);
            double width =
                static_cast<double>(connection.channelWidth());
            double resistance = channelResistance(
                length, width,
                static_cast<double>(options.channelHeight),
                options.viscosity);
            // Endpoint components contribute half their internal
            // path each (the channel ends mid-component).
            resistance +=
                0.5 * entityInternalResistance(source->entityKind());
            resistance +=
                0.5 * entityInternalResistance(sink->entityKind());
            model.edges_.push_back(HydraulicEdge{
                connection.id(), s, source->id(), sink->id(),
                resistance});
        }
    }
    return model;
}

void
HydraulicModel::setPressure(const std::string &component_id,
                            double pascals)
{
    if (nodeIndex_.find(component_id) == nodeIndex_.end())
        fatal("hydraulic model has no node \"" + component_id +
              "\"");
    boundaries_[component_id] = pascals;
}

HydraulicSolution
HydraulicModel::solve() const
{
    PM_OBS_SPAN("sim.solve", "sim");
    if (boundaries_.size() < 2)
        fatal("hydraulic solve needs at least two boundary "
              "pressures");
    PM_OBS_COUNT("sim.solves", 1);
    PM_OBS_GAUGE("sim.nodes", nodes_.size());
    PM_OBS_GAUGE("sim.edges", edges_.size());
    PM_OBS_GAUGE("sim.boundaries", boundaries_.size());

    // Adjacency for reachability from boundary nodes.
    std::vector<std::vector<size_t>> adjacency(nodes_.size());
    for (const HydraulicEdge &edge : edges_) {
        size_t a = nodeIndex_.at(edge.sourceId);
        size_t b = nodeIndex_.at(edge.sinkId);
        adjacency[a].push_back(b);
        adjacency[b].push_back(a);
    }
    std::vector<bool> reachable(nodes_.size(), false);
    std::deque<size_t> queue;
    for (const auto &[id, pressure] : boundaries_) {
        size_t index = nodeIndex_.at(id);
        if (!reachable[index]) {
            reachable[index] = true;
            queue.push_back(index);
        }
    }
    while (!queue.empty()) {
        size_t v = queue.front();
        queue.pop_front();
        for (size_t w : adjacency[v]) {
            if (!reachable[w]) {
                reachable[w] = true;
                queue.push_back(w);
            }
        }
    }

    HydraulicSolution solution;
    solution.edges_ = edges_;

    // Unknowns: reachable, non-boundary nodes.
    std::vector<size_t> unknown_of_node(nodes_.size(), SIZE_MAX);
    std::vector<size_t> unknowns;
    for (size_t v = 0; v < nodes_.size(); ++v) {
        if (!reachable[v]) {
            solution.floating_.push_back(nodes_[v]);
            continue;
        }
        if (boundaries_.count(nodes_[v]))
            continue;
        unknown_of_node[v] = unknowns.size();
        unknowns.push_back(v);
    }

    // Assemble G p = s over the unknowns.
    Matrix conductance(unknowns.size());
    std::vector<double> rhs(unknowns.size(), 0.0);
    for (const HydraulicEdge &edge : edges_) {
        size_t a = nodeIndex_.at(edge.sourceId);
        size_t b = nodeIndex_.at(edge.sinkId);
        if (!reachable[a] || !reachable[b])
            continue;
        double g = 1.0 / edge.resistance;
        auto contribute = [&](size_t self, size_t other) {
            size_t row = unknown_of_node[self];
            if (row == SIZE_MAX)
                return; // Boundary node: no equation.
            conductance.at(row, row) += g;
            size_t other_col = unknown_of_node[other];
            if (other_col != SIZE_MAX) {
                conductance.at(row, other_col) -= g;
            } else {
                rhs[row] += g * boundaries_.at(nodes_[other]);
            }
        };
        contribute(a, b);
        contribute(b, a);
    }

    std::vector<double> solved =
        unknowns.empty()
            ? std::vector<double>{}
            : solveLinearSystem(std::move(conductance),
                                std::move(rhs));

    for (size_t v = 0; v < nodes_.size(); ++v) {
        if (!reachable[v])
            continue;
        auto boundary = boundaries_.find(nodes_[v]);
        if (boundary != boundaries_.end()) {
            solution.pressures_[nodes_[v]] = boundary->second;
        } else {
            solution.pressures_[nodes_[v]] =
                solved[unknown_of_node[v]];
        }
    }

    solution.flows_.reserve(edges_.size());
    for (const HydraulicEdge &edge : edges_) {
        size_t a = nodeIndex_.at(edge.sourceId);
        size_t b = nodeIndex_.at(edge.sinkId);
        if (!reachable[a] || !reachable[b]) {
            solution.flows_.push_back(0.0);
            continue;
        }
        double pa = solution.pressures_.at(edge.sourceId);
        double pb = solution.pressures_.at(edge.sinkId);
        solution.flows_.push_back((pa - pb) / edge.resistance);
    }
    return solution;
}

} // namespace parchmint::sim
