#include "sim/resistance.hh"

#include <algorithm>

#include "common/error.hh"

namespace parchmint::sim
{

double
channelResistance(double length_um, double width_um,
                  double height_um, double viscosity)
{
    if (width_um <= 0 || height_um <= 0)
        fatal("channelResistance: cross-section must be positive");
    if (length_um < 0)
        fatal("channelResistance: length must be non-negative");
    // The approximation wants h <= w.
    double w = std::max(width_um, height_um) * 1e-6;
    double h = std::min(width_um, height_um) * 1e-6;
    double length = length_um * 1e-6;
    double aspect = 1.0 - 0.63 * h / w;
    return 12.0 * viscosity * length / (w * h * h * h * aspect);
}

double
entityInternalResistance(EntityKind kind)
{
    // Characteristic internal channel per entity: length (um) of an
    // equivalent 400x100 um channel. Values reflect the geometry the
    // catalogue assumes: mixers are long serpentines, chambers and
    // traps are wide (low-resistance) cavities, pass-throughs are
    // short stubs.
    double equivalent_length_um = 0.0;
    switch (kind) {
      case EntityKind::Mixer:
        equivalent_length_um = 30000; // Serpentine.
        break;
      case EntityKind::RotaryPump:
        equivalent_length_um = 25000; // Mixing ring.
        break;
      case EntityKind::DiamondChamber:
      case EntityKind::Reservoir:
        equivalent_length_um = 1000; // Wide cavity.
        break;
      case EntityKind::CellTrap:
        equivalent_length_um = 12000; // Trap array.
        break;
      case EntityKind::Filter:
        equivalent_length_um = 8000; // Porous section.
        break;
      case EntityKind::Heater:
      case EntityKind::Sensor:
      case EntityKind::Tree:
      case EntityKind::Mux:
      case EntityKind::Transposer:
        equivalent_length_um = 4000;
        break;
      case EntityKind::Valve:
      case EntityKind::Pump:
        equivalent_length_um = 2000; // Open-state constriction.
        break;
      case EntityKind::Port:
      case EntityKind::Via:
      case EntityKind::Unknown:
        equivalent_length_um = 500; // Pass-through stub.
        break;
    }
    return channelResistance(equivalent_length_um, 400,
                             kDefaultChannelHeight);
}

} // namespace parchmint::sim
