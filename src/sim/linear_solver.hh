/**
 * @file
 * Dense linear solver for the hydraulic network equations.
 *
 * Device networks have at most a few hundred pressure nodes, so a
 * dense LU with partial pivoting (written here, no external linear
 * algebra dependency) is simple and more than fast enough.
 */

#ifndef PARCHMINT_SIM_LINEAR_SOLVER_HH
#define PARCHMINT_SIM_LINEAR_SOLVER_HH

#include <cstddef>
#include <vector>

namespace parchmint::sim
{

/** A dense row-major square matrix. */
class Matrix
{
  public:
    /** Create an n x n zero matrix. */
    explicit Matrix(size_t n);

    size_t size() const { return n_; }

    double &at(size_t row, size_t col);
    double at(size_t row, size_t col) const;

  private:
    size_t n_;
    std::vector<double> cells_;
};

/**
 * Solve A x = b by LU decomposition with partial pivoting. A is
 * consumed (decomposed in place on a copy).
 *
 * @throws UserError when the system is singular (to working
 *         precision), which for hydraulic networks means a floating
 *         node with no path to any pressure boundary.
 */
std::vector<double> solveLinearSystem(Matrix a,
                                      std::vector<double> b);

} // namespace parchmint::sim

#endif // PARCHMINT_SIM_LINEAR_SOLVER_HH
