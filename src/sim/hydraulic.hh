/**
 * @file
 * Steady-state hydraulic network analysis of flow-layer netlists.
 *
 * Builds the resistor-network model of a device's flow layer (one
 * pressure node per component, one resistor per channel source-sink
 * pair including the endpoints' internal resistances), applies
 * Dirichlet pressure boundary conditions at chosen components
 * (normally the I/O PORTs), and solves Kirchhoff's current law for
 * all interior pressures. The solution reports per-channel
 * volumetric flow rates, which is what assay designers actually
 * need from a netlist before fabrication.
 *
 * Channel lengths come from routed paths when the device carries
 * them; unrouted channels fall back to a configurable nominal
 * length, so the model is usable at every design stage.
 */

#ifndef PARCHMINT_SIM_HYDRAULIC_HH
#define PARCHMINT_SIM_HYDRAULIC_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "core/device.hh"
#include "sim/resistance.hh"

namespace parchmint::sim
{

/** Model-construction knobs. */
struct HydraulicOptions
{
    /** Fluid viscosity, Pa*s. */
    double viscosity = kWaterViscosity;
    /** Channel depth when the netlist does not specify one, um. */
    int64_t channelHeight = kDefaultChannelHeight;
    /** Length assumed for unrouted channels, um. */
    int64_t nominalChannelLength = 5000;
};

/** One resolved resistor of the network. */
struct HydraulicEdge
{
    /** Owning connection. */
    std::string connectionId;
    /** Which sink of the connection (multi-sink nets fan out). */
    size_t sinkIndex;
    /** Source and sink component IDs. */
    std::string sourceId;
    std::string sinkId;
    /** Total resistance, Pa*s/m^3. */
    double resistance;
};

/** Result of a solve. */
class HydraulicSolution
{
  public:
    /**
     * Pressure at a component, Pa.
     * @throws UserError for unknown or floating components.
     */
    double pressureAt(const std::string &component_id) const;

    /**
     * Signed volumetric flow through one source-sink resistor of a
     * connection, m^3/s; positive flows source-to-sink.
     *
     * @throws UserError when the connection/sink does not exist in
     *         the model.
     */
    double flowThrough(const std::string &connection_id,
                       size_t sink_index = 0) const;

    /**
     * Net volumetric inflow into a component from all incident
     * channels, m^3/s. Zero (to numerical precision) for interior
     * components (conservation); positive at outlet boundaries.
     */
    double netInflow(const std::string &component_id) const;

    /** Components excluded because no path reaches a boundary. */
    const std::vector<std::string> &floating() const
    {
        return floating_;
    }

    /** The resolved resistor network, for inspection. */
    const std::vector<HydraulicEdge> &edges() const
    {
        return edges_;
    }

  private:
    friend class HydraulicModel;

    std::unordered_map<std::string, double> pressures_;
    std::vector<HydraulicEdge> edges_;
    /** Flow per edge, parallel to edges_. */
    std::vector<double> flows_;
    std::vector<std::string> floating_;
};

/**
 * The hydraulic model of one device's flow layer.
 */
class HydraulicModel
{
  public:
    /**
     * Build the resistor network from a device.
     *
     * @param device The netlist; routed paths are used for channel
     *        lengths when present.
     * @param options Model knobs.
     * @throws UserError when the device has no flow layer.
     */
    static HydraulicModel build(const Device &device,
                                const HydraulicOptions &options = {});

    /**
     * Fix a component's pressure (Dirichlet boundary), Pa.
     * @throws UserError for components not in the model.
     */
    void setPressure(const std::string &component_id,
                     double pascals);

    /** Number of pressure nodes in the model. */
    size_t nodeCount() const { return nodes_.size(); }

    /** The resistor list (before solving). */
    const std::vector<HydraulicEdge> &edges() const
    {
        return edges_;
    }

    /**
     * Solve for all pressures and flows.
     *
     * @throws UserError when fewer than two boundary pressures are
     *         set (no flow problem exists).
     */
    HydraulicSolution solve() const;

  private:
    HydraulicModel() = default;

    std::vector<std::string> nodes_;
    std::unordered_map<std::string, size_t> nodeIndex_;
    std::vector<HydraulicEdge> edges_;
    std::unordered_map<std::string, double> boundaries_;
};

} // namespace parchmint::sim

#endif // PARCHMINT_SIM_HYDRAULIC_HH
