/**
 * @file
 * Hydraulic resistance models.
 *
 * Continuous-flow devices at low Reynolds number behave like
 * resistor networks: pressure is voltage, volumetric flow is
 * current, and a rectangular channel's hydraulic resistance follows
 * the planar Poiseuille approximation
 *
 *     R = 12 mu L / (w h^3 (1 - 0.63 h / w)),   h <= w
 *
 * with mu the fluid viscosity, L the channel length and w x h the
 * cross-section. The catalogue entities get internal resistances
 * derived from their characteristic channel geometry (a mixer is a
 * long serpentine; a valve in the open state is a short constriction).
 */

#ifndef PARCHMINT_SIM_RESISTANCE_HH
#define PARCHMINT_SIM_RESISTANCE_HH

#include <cstdint>

#include "core/entity.hh"

namespace parchmint::sim
{

/** Dynamic viscosity of water at room temperature, Pa*s. */
constexpr double kWaterViscosity = 1.0e-3;

/** Default channel depth when a netlist does not specify one, um. */
constexpr int64_t kDefaultChannelHeight = 100;

/**
 * Hydraulic resistance of a rectangular channel.
 *
 * @param length_um Channel length in micrometers; >= 0.
 * @param width_um Channel width in micrometers; > 0.
 * @param height_um Channel depth in micrometers; > 0. Width and
 *        height are swapped internally when height > width (the
 *        formula wants the narrow dimension cubed).
 * @param viscosity Fluid viscosity in Pa*s.
 * @return Resistance in Pa*s/m^3.
 */
double channelResistance(double length_um, double width_um,
                         double height_um,
                         double viscosity = kWaterViscosity);

/**
 * Internal flow-path resistance of a catalogue entity, between its
 * flow terminals, in Pa*s/m^3. Entities model their characteristic
 * internal channel (serpentine length for mixers, ring length for
 * rotary pumps, near-zero for pass-through primitives).
 *
 * @param kind Catalogue entity; Unknown gets a plain pass-through.
 */
double entityInternalResistance(EntityKind kind);

} // namespace parchmint::sim

#endif // PARCHMINT_SIM_RESISTANCE_HH
