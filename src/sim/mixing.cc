#include "sim/mixing.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/error.hh"
#include "obs/obs.hh"
#include "sim/linear_solver.hh"

namespace parchmint::sim
{

namespace
{

/** The suite-wide "this port drives flow" ID-prefix heuristic. */
bool
looksLikeInlet(const std::string &id)
{
    return id.rfind("in", 0) == 0 || id.rfind("inlet", 0) == 0 ||
           id.rfind("supply", 0) == 0 ||
           id.rfind("sample", 0) == 0 ||
           id.rfind("buffer", 0) == 0 ||
           id.rfind("reagent", 0) == 0 ||
           id.rfind("fill", 0) == 0 ||
           id.rfind("elution", 0) == 0 || id.rfind("win", 0) == 0;
}

} // namespace

PortPartition
classifyFlowPorts(const Device &device)
{
    const Layer *flow = device.firstLayer(LayerType::Flow);
    if (!flow)
        fatal("mixing: device has no flow layer");
    PortPartition partition;
    for (const Component &component : device.components()) {
        if (component.entityKind() != EntityKind::Port)
            continue;
        if (!component.onLayer(flow->id))
            continue;
        if (looksLikeInlet(component.id()))
            partition.inlets.push_back(component.id());
        else
            partition.outlets.push_back(component.id());
    }
    return partition;
}

MixingResult
solveMixing(const Device &device,
            const std::map<std::string, double>
                &inlet_concentrations,
            const MixingOptions &options)
{
    PM_OBS_SPAN("sim.mix", "sim");

    PortPartition ports = classifyFlowPorts(device);
    if (ports.inlets.empty())
        fatal("mixing: no inlet ports (no flow-layer PORT id "
              "matches the inlet prefixes)");
    if (ports.outlets.empty())
        fatal("mixing: no outlet ports (every flow-layer PORT "
              "looks like an inlet)");

    // Resolve the prescribed inlet concentrations.
    std::unordered_map<std::string, double> inlet_value;
    for (size_t i = 0; i < ports.inlets.size(); ++i) {
        inlet_value[ports.inlets[i]] =
            inlet_concentrations.empty() ? (i % 2 == 0 ? 1.0 : 0.0)
                                         : 0.0;
    }
    for (const auto &[id, value] : inlet_concentrations) {
        auto it = inlet_value.find(id);
        if (it == inlet_value.end())
            fatal("mixing: \"" + id + "\" is not an inlet port");
        if (!std::isfinite(value) || value < 0.0 || value > 1.0)
            fatal("mixing: concentration for \"" + id +
                  "\" must be a finite number in [0, 1]");
        it->second = value;
    }

    // Hydraulic pass: pressurize inlets, ground outlets, solve for
    // every channel's volumetric flow.
    HydraulicModel model =
        HydraulicModel::build(device, options.hydraulic);
    for (const std::string &id : ports.inlets)
        model.setPressure(id, options.inletPressurePa);
    for (const std::string &id : ports.outlets)
        model.setPressure(id, 0.0);
    HydraulicSolution flow = model.solve();

    // Collect the concentration nodes: every component that carries
    // a non-floating hydraulic edge. Ordered by first appearance in
    // the edge list so the assembled system is deterministic.
    std::unordered_map<std::string, size_t> node_index;
    std::vector<std::string> node_ids;
    std::vector<double> edge_flow(flow.edges().size(), 0.0);
    double max_flow = 0.0;
    for (size_t e = 0; e < flow.edges().size(); ++e) {
        const HydraulicEdge &edge = flow.edges()[e];
        edge_flow[e] =
            flow.flowThrough(edge.connectionId, edge.sinkIndex);
        max_flow = std::max(max_flow, std::fabs(edge_flow[e]));
        for (const std::string *id :
             {&edge.sourceId, &edge.sinkId}) {
            if (node_index.emplace(*id, node_ids.size()).second)
                node_ids.push_back(*id);
        }
    }
    // Flows smaller than this are stagnant film, not transport.
    const double eps = 1e-9 * std::max(max_flow, 1e-300);

    // Unknowns: every node that is not an inlet. Each gets the
    // junction balance (sum of inflows) * c_v = sum(Q_in * c_u);
    // stagnant nodes pin to zero. Inlets substitute their
    // prescribed value into the right-hand side.
    std::vector<size_t> unknown_of_node(node_ids.size(),
                                        SIZE_MAX);
    std::vector<size_t> unknowns;
    for (size_t v = 0; v < node_ids.size(); ++v) {
        if (inlet_value.count(node_ids[v]))
            continue;
        unknown_of_node[v] = unknowns.size();
        unknowns.push_back(v);
    }

    Matrix balance(unknowns.size());
    std::vector<double> rhs(unknowns.size(), 0.0);
    std::vector<double> inflow(node_ids.size(), 0.0);
    for (size_t e = 0; e < flow.edges().size(); ++e) {
        if (std::fabs(edge_flow[e]) <= eps)
            continue;
        const HydraulicEdge &edge = flow.edges()[e];
        // Positive flow runs source -> sink; negative reverses.
        const std::string &from = edge_flow[e] > 0.0
                                      ? edge.sourceId
                                      : edge.sinkId;
        const std::string &to = edge_flow[e] > 0.0
                                    ? edge.sinkId
                                    : edge.sourceId;
        double q = std::fabs(edge_flow[e]);
        size_t to_node = node_index.at(to);
        size_t from_node = node_index.at(from);
        inflow[to_node] += q;
        size_t row = unknown_of_node[to_node];
        if (row == SIZE_MAX)
            continue; // Inlet: concentration prescribed.
        balance.at(row, row) += q;
        size_t col = unknown_of_node[from_node];
        if (col != SIZE_MAX)
            balance.at(row, col) -= q;
        else
            rhs[row] += q * inlet_value.at(node_ids[from_node]);
    }
    for (size_t u = 0; u < unknowns.size(); ++u) {
        if (inflow[unknowns[u]] <= eps)
            balance.at(u, u) = 1.0; // Stagnant: c = 0.
    }

    std::vector<double> solved =
        unknowns.empty()
            ? std::vector<double>{}
            : solveLinearSystem(std::move(balance),
                                std::move(rhs));

    auto concentration_of = [&](const std::string &id) {
        auto inlet = inlet_value.find(id);
        if (inlet != inlet_value.end())
            return inlet->second;
        auto node = node_index.find(id);
        if (node == node_index.end())
            return 0.0; // Isolated component: no transport.
        size_t row = unknown_of_node[node->second];
        return row == SIZE_MAX ? 0.0 : solved[row];
    };

    MixingResult result;
    result.nodes = model.nodeCount();
    result.edges = flow.edges().size();
    result.inlets = ports.inlets.size();
    result.floating = flow.floating().size();

    double weight_total = 0.0;
    double weighted_sum = 0.0;
    for (const std::string &id : ports.outlets) {
        OutletProfile profile;
        profile.portId = id;
        profile.concentration =
            std::clamp(concentration_of(id), 0.0, 1.0);
        bool floating =
            std::find(flow.floating().begin(),
                      flow.floating().end(),
                      id) != flow.floating().end();
        profile.outflow = floating ? 0.0 : flow.netInflow(id);
        if (profile.outflow > eps) {
            weight_total += profile.outflow;
            weighted_sum +=
                profile.outflow * profile.concentration;
        }
        result.outlets.push_back(std::move(profile));
    }

    if (weight_total > 0.0) {
        double mean = weighted_sum / weight_total;
        double variance = 0.0;
        for (const OutletProfile &profile : result.outlets) {
            if (profile.outflow <= eps)
                continue;
            double d = profile.concentration - mean;
            variance += profile.outflow * d * d;
        }
        variance /= weight_total;
        result.meanConcentration = mean;
        result.mixingQuality =
            mean > 1e-12
                ? std::clamp(1.0 - std::sqrt(variance) / mean,
                             0.0, 1.0)
                : 1.0;
    } else {
        // Nothing flows out: trivially uniform.
        result.mixingQuality = 1.0;
    }

    PM_OBS_COUNT("sim.mix.solves", 1);
    PM_OBS_GAUGE("sim.mix.quality", result.mixingQuality);
    PM_OBS_GAUGE("sim.mix.mean", result.meanConcentration);
    PM_OBS_GAUGE("sim.mix.outlets", result.outlets.size());
    PM_OBS_GAUGE("sim.mix.nodes", result.nodes);
    return result;
}

} // namespace parchmint::sim
