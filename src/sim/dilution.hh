/**
 * @file
 * Sample-preparation dilution-tree synthesis.
 *
 * Given a target concentration and an error bound, emits the
 * shallowest bit-serial 1:1 mixer ladder whose output hits the
 * target within tolerance — every depth-d ladder realizes exactly
 * the dyadic concentrations a/2^d, so the search is over the
 * smallest d whose nearest dyadic is close enough. Alongside the
 * realizable plan, a Stern-Brocot (Farey mediant) walk reports the
 * minimal-denominator fraction inside the tolerance window — the
 * information-theoretic floor a non-dyadic mixer could reach.
 *
 * The synthesized tree is a *valid ParchMint netlist*: reagent and
 * buffer PORTs feeding a chain of catalogue MIXER components, so
 * every downstream tool (validate, place, route, characterize, the
 * mixing solver itself) consumes the plan unchanged.
 */

#ifndef PARCHMINT_SIM_DILUTION_HH
#define PARCHMINT_SIM_DILUTION_HH

#include <cstdint>
#include <string>

#include "core/device.hh"
#include "json/value.hh"

namespace parchmint::sim
{

/** What to synthesize. */
struct DilutionSpec
{
    /** Desired output concentration, in [0, 1]. */
    double target = 0.5;
    /** Acceptable |achieved - target|, > 0. */
    double tolerance = 1.0 / 256.0;
    /** Deepest mixer ladder considered (1..30). */
    size_t maxDepth = 12;
};

/**
 * Parse a spec document: an object with required "target" and
 * optional "tolerance" / "max_depth" members.
 * @throws UserError on missing/mistyped members or out-of-range
 *         values (NaN, infinities, negatives, zero tolerance).
 */
DilutionSpec parseDilutionSpec(const json::Value &document);

/** A synthesized plan. */
struct DilutionPlan
{
    /** achieved == numerator / 2^depth. */
    uint64_t numerator = 0;
    /** Mixers in the ladder (0 = pure reagent or buffer). */
    size_t depth = 0;
    /** Output concentration actually realized. */
    double achieved = 0.0;
    /** |achieved - target|. */
    double error = 0.0;
    /** Fresh reagent loads consumed. */
    size_t reagentUnits = 0;
    /** Buffer loads consumed. */
    size_t bufferUnits = 0;
    /** Minimal-denominator fraction within tolerance (Farey). */
    uint64_t fareyNumerator = 0;
    uint64_t fareyDenominator = 1;
    /** The mixer tree as a valid ParchMint netlist. */
    Device netlist;
};

/**
 * Synthesize the shallowest ladder for @p spec.
 * @throws UserError when the spec is invalid or no depth up to
 *         maxDepth reaches the tolerance.
 */
DilutionPlan synthesizeDilution(const DilutionSpec &spec);

} // namespace parchmint::sim

#endif // PARCHMINT_SIM_DILUTION_HH
