
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/pm_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/pm_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/metrics.cc" "src/CMakeFiles/pm_graph.dir/graph/metrics.cc.o" "gcc" "src/CMakeFiles/pm_graph.dir/graph/metrics.cc.o.d"
  "/root/repo/src/graph/planarity.cc" "src/CMakeFiles/pm_graph.dir/graph/planarity.cc.o" "gcc" "src/CMakeFiles/pm_graph.dir/graph/planarity.cc.o.d"
  "/root/repo/src/graph/shortest_path.cc" "src/CMakeFiles/pm_graph.dir/graph/shortest_path.cc.o" "gcc" "src/CMakeFiles/pm_graph.dir/graph/shortest_path.cc.o.d"
  "/root/repo/src/graph/spanning_tree.cc" "src/CMakeFiles/pm_graph.dir/graph/spanning_tree.cc.o" "gcc" "src/CMakeFiles/pm_graph.dir/graph/spanning_tree.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/CMakeFiles/pm_graph.dir/graph/traversal.cc.o" "gcc" "src/CMakeFiles/pm_graph.dir/graph/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
