file(REMOVE_RECURSE
  "CMakeFiles/pm_graph.dir/graph/graph.cc.o"
  "CMakeFiles/pm_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/pm_graph.dir/graph/metrics.cc.o"
  "CMakeFiles/pm_graph.dir/graph/metrics.cc.o.d"
  "CMakeFiles/pm_graph.dir/graph/planarity.cc.o"
  "CMakeFiles/pm_graph.dir/graph/planarity.cc.o.d"
  "CMakeFiles/pm_graph.dir/graph/shortest_path.cc.o"
  "CMakeFiles/pm_graph.dir/graph/shortest_path.cc.o.d"
  "CMakeFiles/pm_graph.dir/graph/spanning_tree.cc.o"
  "CMakeFiles/pm_graph.dir/graph/spanning_tree.cc.o.d"
  "CMakeFiles/pm_graph.dir/graph/traversal.cc.o"
  "CMakeFiles/pm_graph.dir/graph/traversal.cc.o.d"
  "libpm_graph.a"
  "libpm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
