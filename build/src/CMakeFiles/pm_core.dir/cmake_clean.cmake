file(REMOVE_RECURSE
  "CMakeFiles/pm_core.dir/core/builder.cc.o"
  "CMakeFiles/pm_core.dir/core/builder.cc.o.d"
  "CMakeFiles/pm_core.dir/core/component.cc.o"
  "CMakeFiles/pm_core.dir/core/component.cc.o.d"
  "CMakeFiles/pm_core.dir/core/connection.cc.o"
  "CMakeFiles/pm_core.dir/core/connection.cc.o.d"
  "CMakeFiles/pm_core.dir/core/deserialize.cc.o"
  "CMakeFiles/pm_core.dir/core/deserialize.cc.o.d"
  "CMakeFiles/pm_core.dir/core/device.cc.o"
  "CMakeFiles/pm_core.dir/core/device.cc.o.d"
  "CMakeFiles/pm_core.dir/core/diff.cc.o"
  "CMakeFiles/pm_core.dir/core/diff.cc.o.d"
  "CMakeFiles/pm_core.dir/core/entity.cc.o"
  "CMakeFiles/pm_core.dir/core/entity.cc.o.d"
  "CMakeFiles/pm_core.dir/core/geometry.cc.o"
  "CMakeFiles/pm_core.dir/core/geometry.cc.o.d"
  "CMakeFiles/pm_core.dir/core/params.cc.o"
  "CMakeFiles/pm_core.dir/core/params.cc.o.d"
  "CMakeFiles/pm_core.dir/core/serialize.cc.o"
  "CMakeFiles/pm_core.dir/core/serialize.cc.o.d"
  "libpm_core.a"
  "libpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
