
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/builder.cc" "src/CMakeFiles/pm_core.dir/core/builder.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/builder.cc.o.d"
  "/root/repo/src/core/component.cc" "src/CMakeFiles/pm_core.dir/core/component.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/component.cc.o.d"
  "/root/repo/src/core/connection.cc" "src/CMakeFiles/pm_core.dir/core/connection.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/connection.cc.o.d"
  "/root/repo/src/core/deserialize.cc" "src/CMakeFiles/pm_core.dir/core/deserialize.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/deserialize.cc.o.d"
  "/root/repo/src/core/device.cc" "src/CMakeFiles/pm_core.dir/core/device.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/device.cc.o.d"
  "/root/repo/src/core/diff.cc" "src/CMakeFiles/pm_core.dir/core/diff.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/diff.cc.o.d"
  "/root/repo/src/core/entity.cc" "src/CMakeFiles/pm_core.dir/core/entity.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/entity.cc.o.d"
  "/root/repo/src/core/geometry.cc" "src/CMakeFiles/pm_core.dir/core/geometry.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/geometry.cc.o.d"
  "/root/repo/src/core/params.cc" "src/CMakeFiles/pm_core.dir/core/params.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/params.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/CMakeFiles/pm_core.dir/core/serialize.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
