file(REMOVE_RECURSE
  "libpm_export.a"
)
