# Empty dependencies file for pm_export.
# This may be replaced when dependencies are built.
