file(REMOVE_RECURSE
  "CMakeFiles/pm_export.dir/export/dot.cc.o"
  "CMakeFiles/pm_export.dir/export/dot.cc.o.d"
  "CMakeFiles/pm_export.dir/export/svg.cc.o"
  "CMakeFiles/pm_export.dir/export/svg.cc.o.d"
  "libpm_export.a"
  "libpm_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
