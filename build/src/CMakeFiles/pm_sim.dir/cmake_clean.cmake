file(REMOVE_RECURSE
  "CMakeFiles/pm_sim.dir/sim/hydraulic.cc.o"
  "CMakeFiles/pm_sim.dir/sim/hydraulic.cc.o.d"
  "CMakeFiles/pm_sim.dir/sim/linear_solver.cc.o"
  "CMakeFiles/pm_sim.dir/sim/linear_solver.cc.o.d"
  "CMakeFiles/pm_sim.dir/sim/resistance.cc.o"
  "CMakeFiles/pm_sim.dir/sim/resistance.cc.o.d"
  "libpm_sim.a"
  "libpm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
