file(REMOVE_RECURSE
  "libpm_sim.a"
)
