# Empty dependencies file for pm_mint.
# This may be replaced when dependencies are built.
