file(REMOVE_RECURSE
  "libpm_mint.a"
)
