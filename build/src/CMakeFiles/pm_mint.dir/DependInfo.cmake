
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mint/ast.cc" "src/CMakeFiles/pm_mint.dir/mint/ast.cc.o" "gcc" "src/CMakeFiles/pm_mint.dir/mint/ast.cc.o.d"
  "/root/repo/src/mint/elaborate.cc" "src/CMakeFiles/pm_mint.dir/mint/elaborate.cc.o" "gcc" "src/CMakeFiles/pm_mint.dir/mint/elaborate.cc.o.d"
  "/root/repo/src/mint/lexer.cc" "src/CMakeFiles/pm_mint.dir/mint/lexer.cc.o" "gcc" "src/CMakeFiles/pm_mint.dir/mint/lexer.cc.o.d"
  "/root/repo/src/mint/parser.cc" "src/CMakeFiles/pm_mint.dir/mint/parser.cc.o" "gcc" "src/CMakeFiles/pm_mint.dir/mint/parser.cc.o.d"
  "/root/repo/src/mint/token.cc" "src/CMakeFiles/pm_mint.dir/mint/token.cc.o" "gcc" "src/CMakeFiles/pm_mint.dir/mint/token.cc.o.d"
  "/root/repo/src/mint/write_mint.cc" "src/CMakeFiles/pm_mint.dir/mint/write_mint.cc.o" "gcc" "src/CMakeFiles/pm_mint.dir/mint/write_mint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
