file(REMOVE_RECURSE
  "CMakeFiles/pm_mint.dir/mint/ast.cc.o"
  "CMakeFiles/pm_mint.dir/mint/ast.cc.o.d"
  "CMakeFiles/pm_mint.dir/mint/elaborate.cc.o"
  "CMakeFiles/pm_mint.dir/mint/elaborate.cc.o.d"
  "CMakeFiles/pm_mint.dir/mint/lexer.cc.o"
  "CMakeFiles/pm_mint.dir/mint/lexer.cc.o.d"
  "CMakeFiles/pm_mint.dir/mint/parser.cc.o"
  "CMakeFiles/pm_mint.dir/mint/parser.cc.o.d"
  "CMakeFiles/pm_mint.dir/mint/token.cc.o"
  "CMakeFiles/pm_mint.dir/mint/token.cc.o.d"
  "CMakeFiles/pm_mint.dir/mint/write_mint.cc.o"
  "CMakeFiles/pm_mint.dir/mint/write_mint.cc.o.d"
  "libpm_mint.a"
  "libpm_mint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_mint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
