# Empty compiler generated dependencies file for pm_common.
# This may be replaced when dependencies are built.
