file(REMOVE_RECURSE
  "CMakeFiles/pm_common.dir/common/error.cc.o"
  "CMakeFiles/pm_common.dir/common/error.cc.o.d"
  "CMakeFiles/pm_common.dir/common/rng.cc.o"
  "CMakeFiles/pm_common.dir/common/rng.cc.o.d"
  "CMakeFiles/pm_common.dir/common/strings.cc.o"
  "CMakeFiles/pm_common.dir/common/strings.cc.o.d"
  "libpm_common.a"
  "libpm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
