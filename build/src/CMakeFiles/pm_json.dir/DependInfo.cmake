
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/json/parse.cc" "src/CMakeFiles/pm_json.dir/json/parse.cc.o" "gcc" "src/CMakeFiles/pm_json.dir/json/parse.cc.o.d"
  "/root/repo/src/json/pointer.cc" "src/CMakeFiles/pm_json.dir/json/pointer.cc.o" "gcc" "src/CMakeFiles/pm_json.dir/json/pointer.cc.o.d"
  "/root/repo/src/json/value.cc" "src/CMakeFiles/pm_json.dir/json/value.cc.o" "gcc" "src/CMakeFiles/pm_json.dir/json/value.cc.o.d"
  "/root/repo/src/json/write.cc" "src/CMakeFiles/pm_json.dir/json/write.cc.o" "gcc" "src/CMakeFiles/pm_json.dir/json/write.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
