# Empty compiler generated dependencies file for pm_json.
# This may be replaced when dependencies are built.
