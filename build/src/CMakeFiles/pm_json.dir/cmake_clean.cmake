file(REMOVE_RECURSE
  "CMakeFiles/pm_json.dir/json/parse.cc.o"
  "CMakeFiles/pm_json.dir/json/parse.cc.o.d"
  "CMakeFiles/pm_json.dir/json/pointer.cc.o"
  "CMakeFiles/pm_json.dir/json/pointer.cc.o.d"
  "CMakeFiles/pm_json.dir/json/value.cc.o"
  "CMakeFiles/pm_json.dir/json/value.cc.o.d"
  "CMakeFiles/pm_json.dir/json/write.cc.o"
  "CMakeFiles/pm_json.dir/json/write.cc.o.d"
  "libpm_json.a"
  "libpm_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
