file(REMOVE_RECURSE
  "libpm_json.a"
)
