file(REMOVE_RECURSE
  "CMakeFiles/pm_route.dir/route/astar.cc.o"
  "CMakeFiles/pm_route.dir/route/astar.cc.o.d"
  "CMakeFiles/pm_route.dir/route/metrics.cc.o"
  "CMakeFiles/pm_route.dir/route/metrics.cc.o.d"
  "CMakeFiles/pm_route.dir/route/router.cc.o"
  "CMakeFiles/pm_route.dir/route/router.cc.o.d"
  "CMakeFiles/pm_route.dir/route/routing_grid.cc.o"
  "CMakeFiles/pm_route.dir/route/routing_grid.cc.o.d"
  "libpm_route.a"
  "libpm_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
