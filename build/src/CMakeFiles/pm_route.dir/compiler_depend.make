# Empty compiler generated dependencies file for pm_route.
# This may be replaced when dependencies are built.
