file(REMOVE_RECURSE
  "libpm_route.a"
)
