# Empty compiler generated dependencies file for pm_schema.
# This may be replaced when dependencies are built.
