file(REMOVE_RECURSE
  "libpm_schema.a"
)
