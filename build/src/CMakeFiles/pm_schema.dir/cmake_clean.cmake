file(REMOVE_RECURSE
  "CMakeFiles/pm_schema.dir/schema/parchmint_schema.cc.o"
  "CMakeFiles/pm_schema.dir/schema/parchmint_schema.cc.o.d"
  "CMakeFiles/pm_schema.dir/schema/rules.cc.o"
  "CMakeFiles/pm_schema.dir/schema/rules.cc.o.d"
  "CMakeFiles/pm_schema.dir/schema/schema.cc.o"
  "CMakeFiles/pm_schema.dir/schema/schema.cc.o.d"
  "libpm_schema.a"
  "libpm_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
