file(REMOVE_RECURSE
  "libpm_suite.a"
)
