# Empty dependencies file for pm_suite.
# This may be replaced when dependencies are built.
