
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suite/real_devices.cc" "src/CMakeFiles/pm_suite.dir/suite/real_devices.cc.o" "gcc" "src/CMakeFiles/pm_suite.dir/suite/real_devices.cc.o.d"
  "/root/repo/src/suite/real_devices2.cc" "src/CMakeFiles/pm_suite.dir/suite/real_devices2.cc.o" "gcc" "src/CMakeFiles/pm_suite.dir/suite/real_devices2.cc.o.d"
  "/root/repo/src/suite/suite.cc" "src/CMakeFiles/pm_suite.dir/suite/suite.cc.o" "gcc" "src/CMakeFiles/pm_suite.dir/suite/suite.cc.o.d"
  "/root/repo/src/suite/synthetic.cc" "src/CMakeFiles/pm_suite.dir/suite/synthetic.cc.o" "gcc" "src/CMakeFiles/pm_suite.dir/suite/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_mint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
