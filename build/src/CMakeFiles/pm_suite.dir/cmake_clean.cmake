file(REMOVE_RECURSE
  "CMakeFiles/pm_suite.dir/suite/real_devices.cc.o"
  "CMakeFiles/pm_suite.dir/suite/real_devices.cc.o.d"
  "CMakeFiles/pm_suite.dir/suite/real_devices2.cc.o"
  "CMakeFiles/pm_suite.dir/suite/real_devices2.cc.o.d"
  "CMakeFiles/pm_suite.dir/suite/suite.cc.o"
  "CMakeFiles/pm_suite.dir/suite/suite.cc.o.d"
  "CMakeFiles/pm_suite.dir/suite/synthetic.cc.o"
  "CMakeFiles/pm_suite.dir/suite/synthetic.cc.o.d"
  "libpm_suite.a"
  "libpm_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
