# Empty compiler generated dependencies file for pm_analysis.
# This may be replaced when dependencies are built.
