file(REMOVE_RECURSE
  "CMakeFiles/pm_analysis.dir/analysis/netlist_stats.cc.o"
  "CMakeFiles/pm_analysis.dir/analysis/netlist_stats.cc.o.d"
  "CMakeFiles/pm_analysis.dir/analysis/stats_json.cc.o"
  "CMakeFiles/pm_analysis.dir/analysis/stats_json.cc.o.d"
  "CMakeFiles/pm_analysis.dir/analysis/suite_report.cc.o"
  "CMakeFiles/pm_analysis.dir/analysis/suite_report.cc.o.d"
  "CMakeFiles/pm_analysis.dir/analysis/table.cc.o"
  "CMakeFiles/pm_analysis.dir/analysis/table.cc.o.d"
  "libpm_analysis.a"
  "libpm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
