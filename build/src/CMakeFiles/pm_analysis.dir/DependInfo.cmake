
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/netlist_stats.cc" "src/CMakeFiles/pm_analysis.dir/analysis/netlist_stats.cc.o" "gcc" "src/CMakeFiles/pm_analysis.dir/analysis/netlist_stats.cc.o.d"
  "/root/repo/src/analysis/stats_json.cc" "src/CMakeFiles/pm_analysis.dir/analysis/stats_json.cc.o" "gcc" "src/CMakeFiles/pm_analysis.dir/analysis/stats_json.cc.o.d"
  "/root/repo/src/analysis/suite_report.cc" "src/CMakeFiles/pm_analysis.dir/analysis/suite_report.cc.o" "gcc" "src/CMakeFiles/pm_analysis.dir/analysis/suite_report.cc.o.d"
  "/root/repo/src/analysis/table.cc" "src/CMakeFiles/pm_analysis.dir/analysis/table.cc.o" "gcc" "src/CMakeFiles/pm_analysis.dir/analysis/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_mint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
