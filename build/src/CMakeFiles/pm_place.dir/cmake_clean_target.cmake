file(REMOVE_RECURSE
  "libpm_place.a"
)
