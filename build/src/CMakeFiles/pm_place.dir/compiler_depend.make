# Empty compiler generated dependencies file for pm_place.
# This may be replaced when dependencies are built.
