
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/place/annealing_placer.cc" "src/CMakeFiles/pm_place.dir/place/annealing_placer.cc.o" "gcc" "src/CMakeFiles/pm_place.dir/place/annealing_placer.cc.o.d"
  "/root/repo/src/place/cost.cc" "src/CMakeFiles/pm_place.dir/place/cost.cc.o" "gcc" "src/CMakeFiles/pm_place.dir/place/cost.cc.o.d"
  "/root/repo/src/place/placement.cc" "src/CMakeFiles/pm_place.dir/place/placement.cc.o" "gcc" "src/CMakeFiles/pm_place.dir/place/placement.cc.o.d"
  "/root/repo/src/place/random_placer.cc" "src/CMakeFiles/pm_place.dir/place/random_placer.cc.o" "gcc" "src/CMakeFiles/pm_place.dir/place/random_placer.cc.o.d"
  "/root/repo/src/place/row_placer.cc" "src/CMakeFiles/pm_place.dir/place/row_placer.cc.o" "gcc" "src/CMakeFiles/pm_place.dir/place/row_placer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
