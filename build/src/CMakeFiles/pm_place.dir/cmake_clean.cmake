file(REMOVE_RECURSE
  "CMakeFiles/pm_place.dir/place/annealing_placer.cc.o"
  "CMakeFiles/pm_place.dir/place/annealing_placer.cc.o.d"
  "CMakeFiles/pm_place.dir/place/cost.cc.o"
  "CMakeFiles/pm_place.dir/place/cost.cc.o.d"
  "CMakeFiles/pm_place.dir/place/placement.cc.o"
  "CMakeFiles/pm_place.dir/place/placement.cc.o.d"
  "CMakeFiles/pm_place.dir/place/random_placer.cc.o"
  "CMakeFiles/pm_place.dir/place/random_placer.cc.o.d"
  "CMakeFiles/pm_place.dir/place/row_placer.cc.o"
  "CMakeFiles/pm_place.dir/place/row_placer.cc.o.d"
  "libpm_place.a"
  "libpm_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
