file(REMOVE_RECURSE
  "CMakeFiles/pnr_flow.dir/pnr_flow.cpp.o"
  "CMakeFiles/pnr_flow.dir/pnr_flow.cpp.o.d"
  "pnr_flow"
  "pnr_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnr_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
