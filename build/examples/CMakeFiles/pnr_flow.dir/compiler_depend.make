# Empty compiler generated dependencies file for pnr_flow.
# This may be replaced when dependencies are built.
