# Empty compiler generated dependencies file for mint_flow.
# This may be replaced when dependencies are built.
