file(REMOVE_RECURSE
  "CMakeFiles/mint_flow.dir/mint_flow.cpp.o"
  "CMakeFiles/mint_flow.dir/mint_flow.cpp.o.d"
  "mint_flow"
  "mint_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mint_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
