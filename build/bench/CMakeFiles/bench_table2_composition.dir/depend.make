# Empty dependencies file for bench_table2_composition.
# This may be replaced when dependencies are built.
