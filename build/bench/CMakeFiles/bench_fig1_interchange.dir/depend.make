# Empty dependencies file for bench_fig1_interchange.
# This may be replaced when dependencies are built.
