file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_interchange.dir/bench_fig1_interchange.cc.o"
  "CMakeFiles/bench_fig1_interchange.dir/bench_fig1_interchange.cc.o.d"
  "bench_fig1_interchange"
  "bench_fig1_interchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_interchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
