# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/json_pointer_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/planarity_test[1]_include.cmake")
include("/root/repo/build/tests/mint_test[1]_include.cmake")
include("/root/repo/build/tests/mint_write_test[1]_include.cmake")
include("/root/repo/build/tests/suite_test[1]_include.cmake")
include("/root/repo/build/tests/place_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/stats_json_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/golden_format_test[1]_include.cmake")
