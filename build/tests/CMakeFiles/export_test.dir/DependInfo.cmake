
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/export_test.cc" "tests/CMakeFiles/export_test.dir/export_test.cc.o" "gcc" "tests/CMakeFiles/export_test.dir/export_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_mint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_export.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_route.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_place.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
