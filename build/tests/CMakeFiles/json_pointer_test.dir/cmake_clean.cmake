file(REMOVE_RECURSE
  "CMakeFiles/json_pointer_test.dir/json_pointer_test.cc.o"
  "CMakeFiles/json_pointer_test.dir/json_pointer_test.cc.o.d"
  "json_pointer_test"
  "json_pointer_test.pdb"
  "json_pointer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_pointer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
