# Empty compiler generated dependencies file for json_pointer_test.
# This may be replaced when dependencies are built.
