file(REMOVE_RECURSE
  "CMakeFiles/mint_test.dir/mint_test.cc.o"
  "CMakeFiles/mint_test.dir/mint_test.cc.o.d"
  "mint_test"
  "mint_test.pdb"
  "mint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
