# Empty compiler generated dependencies file for mint_test.
# This may be replaced when dependencies are built.
