file(REMOVE_RECURSE
  "CMakeFiles/mint_write_test.dir/mint_write_test.cc.o"
  "CMakeFiles/mint_write_test.dir/mint_write_test.cc.o.d"
  "mint_write_test"
  "mint_write_test.pdb"
  "mint_write_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mint_write_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
