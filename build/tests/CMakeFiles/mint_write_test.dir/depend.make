# Empty dependencies file for mint_write_test.
# This may be replaced when dependencies are built.
