# Empty dependencies file for stats_json_test.
# This may be replaced when dependencies are built.
