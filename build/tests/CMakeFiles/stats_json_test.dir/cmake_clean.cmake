file(REMOVE_RECURSE
  "CMakeFiles/stats_json_test.dir/stats_json_test.cc.o"
  "CMakeFiles/stats_json_test.dir/stats_json_test.cc.o.d"
  "stats_json_test"
  "stats_json_test.pdb"
  "stats_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
