#!/usr/bin/env bash
# Lightweight formatting gate for the C++ sources.
#
# The repo uses a hand-kept 70-column style rather than an enforced
# .clang-format profile, so this script checks the mechanical
# invariants that style relies on: no hard tabs, no trailing
# whitespace, and a newline at end of file. If a .clang-format file
# is ever added and clang-format is installed, it is applied in
# --dry-run mode as well.

set -u

cd "$(dirname "$0")/.."

files=$(git ls-files '*.cc' '*.hh' '*.cpp' '*.h')
status=0

for f in $files; do
    if grep -n -P '\t' "$f" > /dev/null; then
        echo "error: hard tab in $f:"
        grep -n -P '\t' "$f" | head -3
        status=1
    fi
    if grep -n ' $' "$f" > /dev/null; then
        echo "error: trailing whitespace in $f:"
        grep -n ' $' "$f" | head -3
        status=1
    fi
    if [ -s "$f" ] && [ -n "$(tail -c 1 "$f")" ]; then
        echo "error: missing newline at end of $f"
        status=1
    fi
done

if [ -f .clang-format ] && command -v clang-format > /dev/null; then
    if ! clang-format --dry-run --Werror $files; then
        status=1
    fi
fi

if [ "$status" -eq 0 ]; then
    echo "format check passed ($(echo "$files" | wc -l) files)"
fi
exit "$status"
