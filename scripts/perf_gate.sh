#!/usr/bin/env bash
# CI perf gate: run the pinned place-and-route flow with a run
# report, then diff it against the checked-in baseline summary with
# report_diff (see obs/compare.hh).
#
# Watched metrics are counters only: with a pinned benchmark and
# seed the annealer, router and validator counters are fully
# deterministic, so any drift is a real behaviour change. Wall-time
# metrics (spans, histograms) vary across machines and stay
# unwatched — they are recorded in the artifacts for trend reading,
# not gated.
#
# Exit codes:  0  no watched regression (or no baseline yet)
#              1  a watched counter regressed past the threshold
#              2  harness / comparator failure
#
# Environment overrides:
#   BUILD_DIR   build tree with pnr_flow + report_diff  [build]
#   BASELINE    baseline record to diff against
#               [bench/baselines/pnr_flow_cell_trap_array.json]
#   THRESHOLD   relative noise threshold in percent     [2]
#   OUT_DIR     where current.json etc. land   [$BUILD_DIR/perf_gate]
#
# Refresh the baseline after an intentional perf change with:
#   BUILD_DIR=build scripts/perf_gate.sh --rebaseline

set -u
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BASELINE=${BASELINE:-bench/baselines/pnr_flow_cell_trap_array.json}
THRESHOLD=${THRESHOLD:-2}
OUT_DIR=${OUT_DIR:-$BUILD_DIR/perf_gate}

BENCHMARK=cell_trap_array
SEED=1

PNR="$PWD/$BUILD_DIR/examples/pnr_flow"
DIFF="$PWD/$BUILD_DIR/examples/report_diff"

if [ ! -x "$PNR" ] || [ ! -x "$DIFF" ]; then
    echo "perf_gate: build '$BUILD_DIR' first (needs pnr_flow" \
         "and report_diff)" >&2
    exit 2
fi

mkdir -p "$OUT_DIR"

# One pinned run; pnr_flow drops its netlist/SVG artifacts in cwd,
# so run it inside OUT_DIR. The history file accumulates across
# gate runs into the local perf trajectory.
if ! (cd "$OUT_DIR" &&
      "$PNR" "$BENCHMARK" "$SEED" \
          --report current.json \
          --history history.jsonl > run.log 2>&1); then
    echo "perf_gate: pnr_flow failed:" >&2
    cat "$OUT_DIR/run.log" >&2
    exit 2
fi

# Record parallel-sweep throughput into the trajectory: the same
# suite sweep at one worker and at one worker per hardware thread.
# Throughput is wall-clock and machine-dependent, so it is recorded
# (exec.sweep.* gauges in sweep_history.jsonl), never gated; the
# routed results themselves are byte-identical across job counts.
SUITE="$PWD/$BUILD_DIR/examples/suite_run"
if [ -x "$SUITE" ]; then
    for jobs in 1 0; do
        if ! (cd "$OUT_DIR" &&
              "$SUITE" --jobs "$jobs" --seed "$SEED" --no-sim \
                  --history sweep_history.jsonl \
                  >> sweep.log 2>&1); then
            echo "perf_gate: suite_run --jobs $jobs failed:" >&2
            cat "$OUT_DIR/sweep.log" >&2
            exit 2
        fi
    done
    grep 'benchmarks/s' "$OUT_DIR/sweep.log" | tail -n 2 \
        | sed 's/^/perf_gate: sweep /'
fi

# Record service latency/throughput into the trajectory: a cold
# and a warm loadgen pass against a local parchmintd on an
# ephemeral port. Like the sweep numbers these are wall-clock and
# machine-dependent, so they are recorded (loadgen.* metrics in
# service_history.jsonl, p99/throughput echoed below), never gated.
DAEMON="$PWD/$BUILD_DIR/examples/parchmintd"
LOADGEN="$PWD/$BUILD_DIR/examples/loadgen"
if [ -x "$DAEMON" ] && [ -x "$LOADGEN" ]; then
    rm -f "$OUT_DIR/daemon.port"
    (cd "$OUT_DIR" && exec "$DAEMON" --port 0 \
        --port-file daemon.port > daemon.log 2>&1) &
    daemon_pid=$!
    for _ in $(seq 50); do
        [ -s "$OUT_DIR/daemon.port" ] && break
        sleep 0.1
    done
    if [ ! -s "$OUT_DIR/daemon.port" ]; then
        echo "perf_gate: parchmintd did not report a port:" >&2
        cat "$OUT_DIR/daemon.log" >&2
        kill -TERM "$daemon_pid" 2>/dev/null
        wait "$daemon_pid" 2>/dev/null
        exit 2
    fi
    port=$(cat "$OUT_DIR/daemon.port")
    for pass in cold warm; do
        if ! (cd "$OUT_DIR" &&
              "$LOADGEN" --port "$port" --qps 200 \
                  --connections 4 --duration-s 2 \
                  --history service_history.jsonl \
                  >> service.log 2>&1); then
            echo "perf_gate: loadgen ($pass pass) failed:" >&2
            cat "$OUT_DIR/service.log" >&2
            kill -TERM "$daemon_pid" 2>/dev/null
            wait "$daemon_pid" 2>/dev/null
            exit 2
        fi
    done
    kill -TERM "$daemon_pid" 2>/dev/null
    wait "$daemon_pid" 2>/dev/null
    grep '^loadgen:' "$OUT_DIR/service.log" | tail -n 2 \
        | sed 's/^/perf_gate: service /'
fi

# Record fuzzing throughput into the trajectory: execs/sec per
# fuzz target from the deterministic engine at a fixed seed and
# iteration budget. Wall-clock and machine-dependent like the sweep
# and service numbers, so recorded (echoed below and kept in
# fuzz_bench.log), never gated — a target that gets 10x slower
# shows up here as shrinking CI smoke coverage.
FUZZ_BENCH="$PWD/$BUILD_DIR/bench/bench_fuzz_throughput"
if [ -x "$FUZZ_BENCH" ]; then
    if ! (cd "$OUT_DIR" &&
          "$FUZZ_BENCH" --benchmark_filter='$^' \
              > fuzz_bench.log 2>&1); then
        echo "perf_gate: bench_fuzz_throughput failed:" >&2
        cat "$OUT_DIR/fuzz_bench.log" >&2
        exit 2
    fi
    awk '/^target/{t=1} t && !NF {exit}
         t {print "perf_gate: fuzz " $0}' \
        "$OUT_DIR/fuzz_bench.log"
fi

# Gate the logger's deterministic token-bucket budget: with refill
# 0 and burst 1000 the bench writes exactly 1000 of 10000 lines on
# every machine, so bench.log.written/dropped are gateable counters
# like the annealer's — drift means the rate limiter changed
# semantics, not that the machine got slower. The timer section
# (disabled-site cost etc.) is skipped here; it is wall-clock and
# belongs to the bench artifacts, not the gate.
LOG_BENCH="$PWD/$BUILD_DIR/bench/bench_log_overhead"
LOG_BASELINE=${LOG_BASELINE:-bench/baselines/log_overhead.json}
log_status=0
if [ -x "$LOG_BENCH" ]; then
    if ! (cd "$OUT_DIR" &&
          "$LOG_BENCH" --benchmark_filter='$^' \
              --json-report log_overhead.json \
              --history log_history.jsonl \
              > log_bench.log 2>&1); then
        echo "perf_gate: bench_log_overhead failed:" >&2
        cat "$OUT_DIR/log_bench.log" >&2
        exit 2
    fi
    grep 'token bucket' "$OUT_DIR/log_bench.log" \
        | sed 's/^/perf_gate: log /'
    if [ "${1:-}" = "--rebaseline" ]; then
        mkdir -p "$(dirname "$LOG_BASELINE")"
        tail -n 1 "$OUT_DIR/log_history.jsonl" > "$LOG_BASELINE"
        echo "perf_gate: wrote new baseline $LOG_BASELINE"
    elif [ -f "$LOG_BASELINE" ]; then
        "$DIFF" --threshold "$THRESHOLD" --watch counter: \
            "$LOG_BASELINE" "$OUT_DIR/log_overhead.json" \
            | tee "$OUT_DIR/log_diff.txt"
        log_status=${PIPESTATUS[0]}
        if [ "$log_status" -eq 1 ]; then
            echo "perf_gate: logger budget counters drifted" \
                 "past ${THRESHOLD}% (see table above)" >&2
        fi
    else
        echo "perf_gate: no baseline at $LOG_BASELINE; run with" \
             "--rebaseline to create one. Skipping." >&2
    fi
fi

# Gate the continuous-flow solver, generator, and cluster counters
# the same way: the mixing report solves pinned, unrouted suite
# netlists (no annealer in the loop), the dilution report is pure
# dyadic arithmetic, the generator derives every draw from the spec
# seed, and the cluster report's ring shares / moved keys /
# coalesce counts are pure functions of the content hash and a
# gated burst, so bench.mix.* / bench.dilute.* / bench.gen.* /
# bench.cluster.* counters are machine-independent — drift means
# semantics changed. The cluster report also runs a closed-loop
# latency-vs-load sweep through a real router; its p99/throughput
# lines are wall-clock, echoed below for the trajectory, never
# gated.
flow_status=0
for flow in mixing dilution gen_scaling cluster; do
    FLOW_BENCH="$PWD/$BUILD_DIR/bench/bench_$flow"
    FLOW_BASELINE="bench/baselines/$flow.json"
    [ -x "$FLOW_BENCH" ] || continue
    if ! (cd "$OUT_DIR" &&
          "$FLOW_BENCH" --benchmark_filter='$^' \
              --json-report "$flow.json" \
              --history "${flow}_history.jsonl" \
              > "$flow.log" 2>&1); then
        echo "perf_gate: bench_$flow failed:" >&2
        cat "$OUT_DIR/$flow.log" >&2
        exit 2
    fi
    grep -E 'solved|syntheses|generated|sharded|coalesced|p99_ms' \
        "$OUT_DIR/$flow.log" \
        | sed "s/^/perf_gate: $flow /"
    if [ "${1:-}" = "--rebaseline" ]; then
        mkdir -p "$(dirname "$FLOW_BASELINE")"
        tail -n 1 "$OUT_DIR/${flow}_history.jsonl" \
            > "$FLOW_BASELINE"
        echo "perf_gate: wrote new baseline $FLOW_BASELINE"
    elif [ -f "$FLOW_BASELINE" ]; then
        "$DIFF" --threshold "$THRESHOLD" --watch counter: \
            "$FLOW_BASELINE" "$OUT_DIR/$flow.json" \
            | tee "$OUT_DIR/${flow}_diff.txt"
        this_status=${PIPESTATUS[0]}
        if [ "$this_status" -ne 0 ]; then
            echo "perf_gate: $flow solver counters drifted" \
                 "past ${THRESHOLD}% (see table above)" >&2
            flow_status=$this_status
        fi
    else
        echo "perf_gate: no baseline at $FLOW_BASELINE; run" \
             "with --rebaseline to create one. Skipping." >&2
    fi
done

if [ "${1:-}" = "--rebaseline" ]; then
    mkdir -p "$(dirname "$BASELINE")"
    tail -n 1 "$OUT_DIR/history.jsonl" > "$BASELINE"
    echo "perf_gate: wrote new baseline $BASELINE"
    exit 0
fi

if [ ! -f "$BASELINE" ]; then
    echo "perf_gate: no baseline at $BASELINE; run with" \
         "--rebaseline to create one. Skipping." >&2
    exit 0
fi

# The diff ends with a provenance line comparing the env_id and
# manifest_version stamps of the two runs. Echo it loudly when the
# environments mismatch (or the baseline predates the stamps):
# counter drift measured on a different machine, compiler or
# problem definition is annotated, never silently gated.
"$DIFF" --threshold "$THRESHOLD" --watch counter: \
    "$BASELINE" "$OUT_DIR/current.json" \
    | tee "$OUT_DIR/diff.txt"
status=${PIPESTATUS[0]}
provenance=$(grep '^provenance:' "$OUT_DIR/diff.txt" || true)
case "$provenance" in
    *mismatch*|*legacy*|*unchecked*)
        echo "perf_gate: PROVENANCE NOTE: ${provenance#provenance: }" >&2
        ;;
esac
if [ "$status" -eq 1 ]; then
    echo "perf_gate: watched counter regressed past" \
         "${THRESHOLD}% (see table above)" >&2
elif [ "$status" -ge 2 ]; then
    echo "perf_gate: report_diff failed (exit $status)" >&2
fi
if [ "$status" -eq 0 ] && [ "$log_status" -ne 0 ]; then
    exit "$log_status"
fi
if [ "$status" -eq 0 ] && [ "$flow_status" -ne 0 ]; then
    exit "$flow_status"
fi
exit "$status"
