#!/usr/bin/env python3
"""CI assertion for the end-to-end observability smoke.

Usage:
    check_trace_smoke.py [--endpoint NAME] [--stages CSV] \
        TRACE_ID TRACEZ_JSON LOGZ_JSONL LOG_JSONL

Given the trace ID of the slowest request from a loadgen pass,
asserts the full observability story holds together:

  * the ID resolves at /tracez (TRACEZ_JSON) in both the recent
    ring and the slowest board, with non-empty stage timings;
  * some record for --endpoint (default "route") carries the
    canonical stage breakdown --stages (default
    parse,validate,place,route — the continuous-flow smoke passes
    e.g. --endpoint mix --stages parse,validate,place,route,mix);
  * the same ID appears in the flight-recorder view (/logz,
    LOGZ_JSONL) and in the daemon's structured log (LOG_JSONL);
  * the /logz summary trailer reports zero dropped log lines —
    a healthy CI run must not be rate-limited into silence.

Exits nonzero with a one-line reason on the first violation.
"""

import argparse
import json
import sys


def fail(reason):
    print("check_trace_smoke: FAIL: " + reason, file=sys.stderr)
    sys.exit(1)


def main(argv):
    parser = argparse.ArgumentParser(add_help=False)
    parser.add_argument("--endpoint", default="route")
    parser.add_argument("--stages",
                        default="parse,validate,place,route")
    parser.add_argument("positional", nargs="*")
    options = parser.parse_args(argv[1:])
    if len(options.positional) != 4:
        fail("usage: check_trace_smoke.py [--endpoint NAME]"
             " [--stages CSV] TRACE_ID TRACEZ_JSON"
             " LOGZ_JSONL LOG_JSONL")
    trace, tracez_path, logz_path, log_path = options.positional
    if not trace:
        fail("empty trace ID (loadgen printed no slow[1] line?)")

    with open(tracez_path) as handle:
        tracez = json.load(handle)
    if tracez.get("schema") != "parchmintd-tracez-v1":
        fail("unexpected /tracez schema %r" % tracez.get("schema"))

    def records_with(records, wanted):
        return [r for r in records if r.get("trace") == wanted]

    recent = records_with(tracez["recent"], trace)
    slowest = records_with(tracez["slowest"], trace)
    if not recent:
        fail("trace %s not in /tracez recent ring" % trace)
    if not slowest:
        fail("trace %s not on /tracez slowest board" % trace)
    for record in recent + slowest:
        if not record.get("stages"):
            fail("trace %s record has no stage timings" % trace)

    canonical = options.stages.split(",")
    endpoint_records = [r for r in
                        tracez["recent"] + tracez["slowest"]
                        if r.get("endpoint") == options.endpoint]
    if not endpoint_records:
        fail("no /tracez record for endpoint %r"
             % options.endpoint)
    if not any([s["name"] for s in r.get("stages", [])] == canonical
               for r in endpoint_records):
        fail("no %s record with the canonical stage breakdown "
             "%s" % (options.endpoint, canonical))

    with open(logz_path) as handle:
        logz_lines = [json.loads(line)
                      for line in handle if line.strip()]
    if not logz_lines:
        fail("/logz served no lines")
    trailer = logz_lines[-1]
    if trailer.get("type") != "logz_summary":
        fail("/logz does not end with a logz_summary trailer")
    if trailer.get("log_dropped") != 0:
        fail("daemon dropped %s log lines under CI load "
             "(rate limit too tight, or a log-volume regression)"
             % trailer.get("log_dropped"))
    if not any(event.get("trace") == trace
               for event in logz_lines[:-1]):
        fail("trace %s not in the /logz flight view" % trace)

    with open(log_path) as handle:
        log_lines = [json.loads(line)
                     for line in handle if line.strip()]
    if not any(line.get("trace") == trace for line in log_lines):
        fail("trace %s not in the structured daemon log" % trace)

    print("check_trace_smoke: OK: trace %s resolved at /tracez "
          "(%d recent, %d slowest records), found in /logz "
          "(%d events, 0 dropped) and the daemon log (%d lines)"
          % (trace, len(recent), len(slowest),
             len(logz_lines) - 1, len(log_lines)))


if __name__ == "__main__":
    main(sys.argv)
