/**
 * @file
 * Experiment T2 [R]: suite composition.
 *
 * Regenerates the entity-histogram table: one row per catalogue
 * entity, one column per benchmark, cells are instance counts. The
 * timers measure netlist construction cost per benchmark (the cost
 * of regenerating a suite artifact from its builder).
 */

#include "bench_common.hh"

#include "analysis/suite_report.hh"
#include "suite/suite.hh"

using namespace parchmint;

namespace
{

void
report()
{
    bench::heading("T2", "suite composition (entity histogram)");
    auto rows = analysis::characterizeSuite();
    std::printf("%s\n",
                analysis::renderCompositionTable(rows).c_str());
}

void
BM_BuildBenchmark(benchmark::State &state)
{
    const auto &info =
        suite::standardSuite()[static_cast<size_t>(state.range(0))];
    for (auto _ : state)
        benchmark::DoNotOptimize(info.build());
    state.SetLabel(info.name);
}

} // namespace

BENCHMARK(BM_BuildBenchmark)->DenseRange(0, 11);

PARCHMINT_BENCH_MAIN(report)
