/**
 * @file
 * Experiment F4 [R]: synthetic scaling of the physical design flow.
 *
 * Sweeps each synthetic family's size parameter and reports
 * netlist size, place+route wall time and routed quality. Expected
 * shape: runtime grows polynomially with component count (the
 * annealing move budget is linear in components and the maze
 * router's grid grows with die area); completion stays near 100%
 * on the planar families.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "place/annealing_placer.hh"
#include "place/row_placer.hh"
#include "route/router.hh"
#include "suite/suite.hh"

using namespace parchmint;

namespace
{

struct FlowOutcome
{
    size_t components;
    size_t connections;
    double placeMs;
    double routeMs;
    double completion;
    int64_t length;
};

FlowOutcome
runFlow(Device device)
{
    FlowOutcome outcome;
    outcome.components = device.components().size();
    outcome.connections = device.connections().size();

    place::AnnealingOptions options;
    options.seed = 1;
    options.steps = 50;
    bench::Stopwatch place_watch;
    place::Placement placement =
        place::AnnealingPlacer(options).place(device);
    outcome.placeMs = place_watch.elapsedMs();

    bench::Stopwatch route_watch;
    route::RouteResult result =
        route::routeDevice(device, placement);
    outcome.routeMs = route_watch.elapsedMs();
    outcome.completion = result.completionRate();
    outcome.length = result.totalLength;
    return outcome;
}

void
reportFamily(const char *family,
             const std::vector<std::pair<std::string, Device>> &runs)
{
    std::printf("family: %s\n", family);
    analysis::TextTable table;
    table.beginRow();
    table.cell(std::string("instance"));
    table.cell(std::string("comps"));
    table.cell(std::string("conns"));
    table.cell(std::string("place ms"));
    table.cell(std::string("route ms"));
    table.cell(std::string("cmpl%"));
    table.cell(std::string("len mm"));

    for (const auto &[label, device] : runs) {
        FlowOutcome outcome = runFlow(device);
        table.beginRow();
        table.cell(label);
        table.cell(outcome.components);
        table.cell(outcome.connections);
        table.cell(outcome.placeMs, 1);
        table.cell(outcome.routeMs, 1);
        table.cell(100.0 * outcome.completion, 1);
        table.cell(static_cast<double>(outcome.length) / 1000.0, 1);
    }
    std::printf("%s\n", table.render().c_str());
}

void
report()
{
    bench::heading("F4", "place+route scaling on the synthetic "
                         "families");

    std::vector<std::pair<std::string, Device>> grids;
    for (size_t n : {2, 4, 6, 8}) {
        grids.emplace_back("grid_" + std::to_string(n),
                           suite::syntheticGrid(n));
    }
    reportFamily("grid (n x n mesh)", grids);

    std::vector<std::pair<std::string, Device>> trees;
    for (size_t depth : {2, 3, 4, 5}) {
        trees.emplace_back("tree_" + std::to_string(depth),
                           suite::syntheticTree(depth));
    }
    reportFamily("tree (depth d)", trees);

    std::vector<std::pair<std::string, Device>> muxes;
    for (size_t targets : {4, 8, 16, 32}) {
        muxes.emplace_back("mux_" + std::to_string(targets),
                           suite::syntheticMux(targets));
    }
    reportFamily("mux (k targets)", muxes);

    std::vector<std::pair<std::string, Device>> randoms;
    for (size_t components : {16, 32, 64, 96}) {
        randoms.emplace_back(
            "random_" + std::to_string(components),
            suite::syntheticRandomPlanar(components, 7));
    }
    reportFamily("random planar (m components)", randoms);
}

void
BM_PlaceRouteGrid(benchmark::State &state)
{
    Device device =
        suite::syntheticGrid(static_cast<size_t>(state.range(0)));
    place::AnnealingOptions options;
    options.seed = 1;
    options.steps = 30;
    for (auto _ : state) {
        Device copy = device;
        place::Placement placement =
            place::AnnealingPlacer(options).place(copy);
        benchmark::DoNotOptimize(
            route::routeDevice(copy, placement));
    }
}

} // namespace

BENCHMARK(BM_PlaceRouteGrid)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

PARCHMINT_BENCH_MAIN(report)
