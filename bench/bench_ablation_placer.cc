/**
 * @file
 * Ablation A1: simulated-annealing design choices.
 *
 * DESIGN.md calls out three placer design choices; this harness
 * ablates each on a mid-size benchmark (general_purpose_mfd) and a
 * dense synthetic (synthetic_grid), reporting post-route quality so
 * the choice's downstream effect is visible, not just its HPWL:
 *
 *   (a) routing halo: 0 / 600 / 1200 / 2400 um;
 *   (b) annealing budget: 15 / 30 / 60 / 120 / 240 steps;
 *   (c) swap-move probability: 0 / 0.25 / 0.5.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "place/annealing_placer.hh"
#include "place/cost.hh"
#include "route/router.hh"
#include "suite/suite.hh"

using namespace parchmint;

namespace
{

struct Outcome
{
    int64_t hpwl;
    int64_t boundingArea;
    double completion;
    int64_t routedLength;
    size_t violations;
};

Outcome
evaluate(const Device &netlist, const place::AnnealingOptions &options)
{
    Device device = netlist;
    place::AnnealingPlacer placer(options);
    place::Placement placement = placer.place(device);
    place::PlacementCost cost =
        place::evaluatePlacement(device, placement);
    route::RouteResult routed =
        route::routeDevice(device, placement);
    return Outcome{cost.hpwl, cost.boundingArea,
                   routed.completionRate(), routed.totalLength,
                   routed.totalViolations};
}

void
sweepTable(const char *title, const Device &device,
           const std::vector<std::pair<std::string,
                                       place::AnnealingOptions>>
               &variants)
{
    std::printf("%s (%s)\n", title, device.name().c_str());
    analysis::TextTable table;
    table.beginRow();
    table.cell(std::string("variant"));
    table.cell(std::string("hpwl"));
    table.cell(std::string("area mm^2"));
    table.cell(std::string("cmpl%"));
    table.cell(std::string("len mm"));
    table.cell(std::string("viol"));
    for (const auto &[label, options] : variants) {
        Outcome outcome = evaluate(device, options);
        table.beginRow();
        table.cell(label);
        table.cell(outcome.hpwl);
        table.cell(static_cast<double>(outcome.boundingArea) / 1e6,
                   1);
        table.cell(100.0 * outcome.completion, 1);
        table.cell(static_cast<double>(outcome.routedLength) /
                       1000.0,
                   1);
        table.cell(outcome.violations);
    }
    std::printf("%s\n", table.render().c_str());
}

void
report()
{
    bench::heading("A1", "placer ablations (effect measured after "
                         "routing)");
    for (const char *name :
         {"general_purpose_mfd", "synthetic_grid"}) {
        Device device = suite::buildBenchmark(name);

        std::vector<std::pair<std::string, place::AnnealingOptions>>
            halos;
        for (int64_t halo : {0, 600, 1200, 2400}) {
            place::AnnealingOptions options;
            options.seed = 1;
            options.halo = halo;
            halos.emplace_back("halo=" + std::to_string(halo),
                               options);
        }
        sweepTable("(a) routing halo", device, halos);

        std::vector<std::pair<std::string, place::AnnealingOptions>>
            budgets;
        for (size_t steps : {15, 30, 60, 120, 240}) {
            place::AnnealingOptions options;
            options.seed = 1;
            options.steps = steps;
            budgets.emplace_back("steps=" + std::to_string(steps),
                                 options);
        }
        sweepTable("(b) annealing budget", device, budgets);

        std::vector<std::pair<std::string, place::AnnealingOptions>>
            swaps;
        for (double p : {0.0, 0.25, 0.5}) {
            place::AnnealingOptions options;
            options.seed = 1;
            options.swapProbability = p;
            char label[32];
            std::snprintf(label, sizeof(label), "swap=%.2f", p);
            swaps.emplace_back(label, options);
        }
        sweepTable("(c) swap probability", device, swaps);
    }
}

} // namespace

PARCHMINT_BENCH_MAIN(report)
