/**
 * @file
 * Experiment F3 [R]: routing quality after placement.
 *
 * For every benchmark, route after (a) the row baseline placement
 * and (b) the annealing placement, and report completion rate,
 * total routed channel length and bends. Expected shape: completion
 * near 100% everywhere; the annealing placement yields shorter
 * total channel length than the row baseline on connection-rich
 * benchmarks.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "place/annealing_placer.hh"
#include "place/row_placer.hh"
#include "route/router.hh"
#include "suite/suite.hh"

using namespace parchmint;

namespace
{

struct RoutedOutcome
{
    double completion;
    int64_t length;
    int bends;
    size_t violations;
};

RoutedOutcome
routeWith(const Device &netlist, const place::Placement &placement)
{
    Device device = netlist; // Route a copy; paths mutate it.
    route::RouteResult result =
        route::routeDevice(device, placement);
    return RoutedOutcome{result.completionRate(),
                         result.totalLength, result.totalBends,
                         result.totalViolations};
}

void
report()
{
    bench::heading("F3", "routing quality: row vs annealing "
                         "placement");
    analysis::TextTable table;
    table.beginRow();
    table.cell(std::string("benchmark"));
    table.cell(std::string("row cmpl%"));
    table.cell(std::string("row len mm"));
    table.cell(std::string("row bends"));
    table.cell(std::string("sa cmpl%"));
    table.cell(std::string("sa len mm"));
    table.cell(std::string("sa bends"));
    table.cell(std::string("row viol"));
    table.cell(std::string("sa viol"));

    for (const suite::BenchmarkInfo &info : suite::standardSuite()) {
        Device device = info.build();
        place::Placement row_placement =
            place::RowPlacer().place(device);
        place::AnnealingOptions options;
        options.seed = 1;
        place::Placement annealed =
            place::AnnealingPlacer(options).place(device);

        RoutedOutcome row = routeWith(device, row_placement);
        RoutedOutcome sa = routeWith(device, annealed);

        table.beginRow();
        table.cell(info.name);
        table.cell(100.0 * row.completion, 1);
        table.cell(static_cast<double>(row.length) / 1000.0, 1);
        table.cell(row.bends);
        table.cell(100.0 * sa.completion, 1);
        table.cell(static_cast<double>(sa.length) / 1000.0, 1);
        table.cell(sa.bends);
        table.cell(row.violations);
        table.cell(sa.violations);
    }
    std::printf("%s\n", table.render().c_str());
}

void
BM_RouteRowPlacement(benchmark::State &state)
{
    const auto &info =
        suite::standardSuite()[static_cast<size_t>(state.range(0))];
    Device device = info.build();
    place::Placement placement = place::RowPlacer().place(device);
    for (auto _ : state) {
        Device copy = device;
        benchmark::DoNotOptimize(
            route::routeDevice(copy, placement));
    }
    state.SetLabel(info.name);
}

} // namespace

BENCHMARK(BM_RouteRowPlacement)->Arg(0)->Arg(4)->Arg(6)->Arg(9);

PARCHMINT_BENCH_MAIN(report)
