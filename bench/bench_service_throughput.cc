/**
 * @file
 * Service throughput: the netlist service measured end-to-end over
 * loopback HTTP and in-process, isolating the wire from the work.
 *
 * The report section runs a fixed request mix against an in-process
 * HttpServer (one keep-alive client, real sockets) and prints
 * per-endpoint latency and the cache's effect: each endpoint is
 * measured cold (first sight of the netlist) and warm (repeat, so
 * the content-addressed result cache answers). The google-benchmark
 * timers then cover the in-process handle() path — parse + dispatch
 * without sockets — and the loopback round-trip, for validate (the
 * cheapest pipeline) and place (the dearest), cold and warm.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "core/serialize.hh"
#include "json/write.hh"
#include "suite/suite.hh"
#include "svc/client.hh"
#include "svc/server.hh"
#include "svc/service.hh"

using namespace parchmint;

namespace
{

std::string
netlistBody(const std::string &benchmark)
{
    json::WriteOptions options;
    options.pretty = false;
    return json::write(toJson(suite::buildBenchmark(benchmark)),
                       options);
}

/** POST one request and return its latency in microseconds. */
double
roundTripUs(svc::HttpClient &client, const std::string &endpoint,
            const std::string &body)
{
    bench::Stopwatch watch;
    svc::HttpResponse response = client.post(endpoint, body);
    double us = watch.elapsedUs();
    if (response.status != 200)
        fatal("unexpected status " +
              std::to_string(response.status) + " from " +
              endpoint);
    return us;
}

void
report()
{
    bench::heading("service", "loopback latency, cold vs warm");

    svc::NetlistService service;
    svc::HttpServer server(service);
    server.start();
    svc::HttpClient client("127.0.0.1", server.port());

    const char *endpoints[] = {"/v1/validate", "/v1/characterize",
                               "/v1/place", "/v1/route"};
    const char *benchmarks[] = {"cell_trap_array",
                                "general_purpose_mfd"};

    analysis::TextTable table;
    table.beginRow();
    table.cell(std::string("endpoint"));
    table.cell(std::string("benchmark"));
    table.cell(std::string("cold ms"));
    table.cell(std::string("warm ms"));
    table.cell(std::string("speedup"));
    for (const char *benchmark : benchmarks) {
        std::string body = netlistBody(benchmark);
        for (const char *endpoint : endpoints) {
            // A fresh service per cell would lose keep-alive; a
            // fresh body suffix would defeat the cache. The cold
            // number is the first request of this (endpoint,
            // netlist) pair on a shared server, which is exactly
            // how a client fleet sees it.
            double cold_us =
                roundTripUs(client, endpoint, body);
            double warm_us = 0.0;
            const int repeats = 16;
            for (int i = 0; i < repeats; ++i)
                warm_us += roundTripUs(client, endpoint, body);
            warm_us /= repeats;
            table.beginRow();
            table.cell(std::string(endpoint));
            table.cell(std::string(benchmark));
            table.cell(cold_us / 1000.0, 3);
            table.cell(warm_us / 1000.0, 3);
            table.cell(warm_us > 0.0 ? cold_us / warm_us : 0.0,
                       1);
        }
    }
    std::printf("%s\n", table.render().c_str());

    svc::CacheStats results = service.resultCacheStats();
    std::printf("result cache: %zu hits / %zu probes\n\n",
                static_cast<size_t>(results.hits),
                static_cast<size_t>(results.hits +
                                    results.misses));
    server.stop();
}

/** In-process handle(), no sockets. */
void
inProcess(benchmark::State &state, const char *endpoint,
          bool warm)
{
    std::string body = netlistBody("cell_trap_array");
    svc::HttpRequest request;
    request.method = "POST";
    request.target = endpoint;
    request.body = body;
    for (auto _ : state) {
        if (!warm) {
            state.PauseTiming();
            svc::NetlistService cold_service;
            state.ResumeTiming();
            benchmark::DoNotOptimize(
                cold_service.handle(request));
            continue;
        }
        static svc::NetlistService warm_service;
        benchmark::DoNotOptimize(warm_service.handle(request));
    }
}

void
BM_InProcessValidateCold(benchmark::State &state)
{
    inProcess(state, "/v1/validate", false);
}
BENCHMARK(BM_InProcessValidateCold)
    ->Unit(benchmark::kMicrosecond);

void
BM_InProcessValidateWarm(benchmark::State &state)
{
    inProcess(state, "/v1/validate", true);
}
BENCHMARK(BM_InProcessValidateWarm)
    ->Unit(benchmark::kMicrosecond);

void
BM_LoopbackValidateWarm(benchmark::State &state)
{
    svc::NetlistService service;
    svc::HttpServer server(service);
    server.start();
    svc::HttpClient client("127.0.0.1", server.port());
    std::string body = netlistBody("cell_trap_array");
    client.post("/v1/validate", body);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            client.post("/v1/validate", body));
    }
    server.stop();
}
BENCHMARK(BM_LoopbackValidateWarm)
    ->Unit(benchmark::kMicrosecond);

void
BM_LoopbackPlaceWarm(benchmark::State &state)
{
    svc::NetlistService service;
    svc::HttpServer server(service);
    server.start();
    svc::HttpClient client("127.0.0.1", server.port());
    std::string body = netlistBody("cell_trap_array");
    client.post("/v1/place", body);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            client.post("/v1/place", body));
    }
    server.stop();
}
BENCHMARK(BM_LoopbackPlaceWarm)
    ->Unit(benchmark::kMicrosecond);

} // namespace

PARCHMINT_BENCH_MAIN(report)
