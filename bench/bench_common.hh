/**
 * @file
 * Shared helpers for the benchmark harness binaries.
 *
 * Every bench binary regenerates one table or figure of the
 * reproduction (see DESIGN.md's experiment index): it prints the
 * report rows first, then runs any registered google-benchmark
 * timers. Reports go to stdout so `bench_* | tee` captures the
 * artifact.
 *
 * Passing `--json-report <path>` to any bench binary additionally
 * enables observability for the run and writes a run-report JSON
 * artifact (spans + metrics + environment snapshot, see
 * obs/report.hh) next to the stdout report. The file doubles as a
 * chrome://tracing trace.
 */

#ifndef PARCHMINT_BENCH_BENCH_COMMON_HH
#define PARCHMINT_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "obs/clock.hh"
#include "obs/obs.hh"
#include "obs/report.hh"

namespace parchmint::bench
{

/** The obs wall-clock stopwatch, re-exported for bench code. */
using Stopwatch = ::parchmint::obs::Stopwatch;

/** Print a section heading for a report block. */
inline void
heading(const char *experiment, const char *title)
{
    std::printf("== %s: %s ==\n\n", experiment, title);
}

/**
 * Pull `--json-report <path>` out of argv (so google-benchmark
 * never sees it) and enable observability when it was given.
 *
 * @return The report path, or "" when the flag is absent.
 */
inline std::string
extractJsonReportFlag(int &argc, char **argv)
{
    std::string path;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json-report" &&
            i + 1 < argc) {
            path = argv[++i];
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    if (!path.empty())
        ::parchmint::obs::setEnabled(true);
    return path;
}

/** Write the run-report artifact for a bench binary. */
inline void
writeBenchReport(const std::string &path, const char *tool)
{
    ::parchmint::obs::RunInfo info;
    info.tool = tool;
    info.timestamp = ::parchmint::obs::localTimestamp();
    ::parchmint::obs::writeRunReport(path, info);
    std::printf("wrote run report %s\n", path.c_str());
}

/**
 * Standard main body: print the report, then hand over to
 * google-benchmark for the registered timers; finally emit the
 * run-report artifact when `--json-report <path>` was passed.
 */
#define PARCHMINT_BENCH_MAIN(report_function)                         \
    int main(int argc, char **argv)                                   \
    {                                                                 \
        std::string pm_bench_report_path =                            \
            ::parchmint::bench::extractJsonReportFlag(argc, argv);    \
        report_function();                                            \
        ::benchmark::Initialize(&argc, argv);                         \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))     \
            return 1;                                                 \
        ::benchmark::RunSpecifiedBenchmarks();                        \
        ::benchmark::Shutdown();                                      \
        if (!pm_bench_report_path.empty()) {                          \
            ::parchmint::bench::writeBenchReport(                     \
                pm_bench_report_path, argv[0]);                       \
        }                                                             \
        return 0;                                                     \
    }

} // namespace parchmint::bench

#endif // PARCHMINT_BENCH_BENCH_COMMON_HH
