/**
 * @file
 * Shared helpers for the benchmark harness binaries.
 *
 * Every bench binary regenerates one table or figure of the
 * reproduction (see DESIGN.md's experiment index): it prints the
 * report rows first, then runs any registered google-benchmark
 * timers. Reports go to stdout so `bench_* | tee` captures the
 * artifact.
 */

#ifndef PARCHMINT_BENCH_BENCH_COMMON_HH
#define PARCHMINT_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

namespace parchmint::bench
{

/** Wall-clock stopwatch reporting milliseconds. */
class Stopwatch
{
  public:
    Stopwatch()
        : start_(std::chrono::steady_clock::now())
    {
    }

    /** Milliseconds since construction or the last reset. */
    double
    elapsedMs() const
    {
        auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double, std::milli>(now -
                                                         start_)
            .count();
    }

    void
    reset()
    {
        start_ = std::chrono::steady_clock::now();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Print a section heading for a report block. */
inline void
heading(const char *experiment, const char *title)
{
    std::printf("== %s: %s ==\n\n", experiment, title);
}

/**
 * Standard main body: print the report, then hand over to
 * google-benchmark for the registered timers.
 */
#define PARCHMINT_BENCH_MAIN(report_function)                        \
    int main(int argc, char **argv)                                  \
    {                                                                \
        report_function();                                           \
        ::benchmark::Initialize(&argc, argv);                        \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))    \
            return 1;                                                \
        ::benchmark::RunSpecifiedBenchmarks();                       \
        ::benchmark::Shutdown();                                     \
        return 0;                                                    \
    }

} // namespace parchmint::bench

#endif // PARCHMINT_BENCH_BENCH_COMMON_HH
