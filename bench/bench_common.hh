/**
 * @file
 * Shared helpers for the benchmark harness binaries.
 *
 * Every bench binary regenerates one table or figure of the
 * reproduction (see DESIGN.md's experiment index): it prints the
 * report rows first, then runs any registered google-benchmark
 * timers. Reports go to stdout so `bench_* | tee` captures the
 * artifact.
 *
 * Passing `--json-report <path>` (or `--json-report=<path>`) to any
 * bench binary additionally enables observability for the run and
 * writes a run-report JSON artifact (spans + metrics + environment
 * snapshot, see obs/report.hh) next to the stdout report. The file
 * doubles as a chrome://tracing trace, and a collapsed-stack
 * flamegraph export lands next to it at `<path>.folded`.
 * `--history <path>` (or `--history=<path>`) appends a compact
 * summary record of the run to a JSONL history file (see
 * obs/history.hh), so repeated bench runs accumulate into a perf
 * trajectory that `report_diff` can gate on.
 */

#ifndef PARCHMINT_BENCH_BENCH_COMMON_HH
#define PARCHMINT_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "common/strings.hh"
#include "obs/clock.hh"
#include "obs/history.hh"
#include "obs/obs.hh"
#include "obs/report.hh"

namespace parchmint::bench
{

/** The obs wall-clock stopwatch, re-exported for bench code. */
using Stopwatch = ::parchmint::obs::Stopwatch;

/** Print a section heading for a report block. */
inline void
heading(const char *experiment, const char *title)
{
    std::printf("== %s: %s ==\n\n", experiment, title);
}

/** Harness flags shared by every bench binary. */
struct BenchFlags
{
    /** `--json-report`: run-report artifact path, or "". */
    std::string reportPath;
    /** `--history`: JSONL history file to append to, or "". */
    std::string historyPath;
};

/**
 * Match one `--flag <value>` / `--flag=<value>` argument at
 * position @p i, storing the value and advancing @p i past a
 * space-separated value.
 */
inline bool
matchValueFlag(int &i, int argc, char **argv, const char *name,
               std::string &out)
{
    std::string arg = argv[i];
    if (arg == name && i + 1 < argc) {
        out = argv[++i];
        return true;
    }
    std::string prefix = std::string(name) + "=";
    if (::parchmint::startsWith(arg, prefix)) {
        out = arg.substr(prefix.size());
        return true;
    }
    return false;
}

/**
 * Pull the harness flags out of argv (so google-benchmark never
 * sees them) and enable observability when any was given. Both the
 * space-separated and the `=` spellings are accepted.
 */
inline BenchFlags
extractBenchFlags(int &argc, char **argv)
{
    BenchFlags flags;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (matchValueFlag(i, argc, argv, "--json-report",
                           flags.reportPath)) {
            continue;
        }
        if (matchValueFlag(i, argc, argv, "--history",
                           flags.historyPath)) {
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    if (!flags.reportPath.empty() || !flags.historyPath.empty())
        ::parchmint::obs::setEnabled(true);
    return flags;
}

/**
 * Emit the run artifacts for a bench binary: the run report plus
 * its folded flamegraph when `--json-report` was passed, and the
 * history record when `--history` was. The tool name is the
 * basename of @p argv0, so reports from different build directories
 * compare equal in the diff engine.
 */
inline void
writeBenchArtifacts(const BenchFlags &flags, const char *argv0)
{
    ::parchmint::obs::RunInfo info;
    info.tool = ::parchmint::pathBasename(argv0);
    info.timestamp = ::parchmint::obs::localTimestamp();
    if (!flags.reportPath.empty()) {
        ::parchmint::obs::writeRunReport(flags.reportPath, info);
        ::parchmint::obs::writeFoldedStacks(flags.reportPath +
                                            ".folded");
        std::printf("wrote run report %s (+ .folded)\n",
                    flags.reportPath.c_str());
    }
    if (!flags.historyPath.empty()) {
        ::parchmint::obs::appendHistory(flags.historyPath, info);
        std::printf("appended run history %s\n",
                    flags.historyPath.c_str());
    }
}

/**
 * Standard main body: print the report, then hand over to
 * google-benchmark for the registered timers; finally emit the
 * run-report / history artifacts when `--json-report <path>` or
 * `--history <path>` was passed.
 */
#define PARCHMINT_BENCH_MAIN(report_function)                         \
    int main(int argc, char **argv)                                   \
    {                                                                 \
        ::parchmint::bench::BenchFlags pm_bench_flags =               \
            ::parchmint::bench::extractBenchFlags(argc, argv);        \
        report_function();                                            \
        ::benchmark::Initialize(&argc, argv);                         \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))     \
            return 1;                                                 \
        ::benchmark::RunSpecifiedBenchmarks();                        \
        ::benchmark::Shutdown();                                      \
        ::parchmint::bench::writeBenchArtifacts(pm_bench_flags,       \
                                                argv[0]);             \
        return 0;                                                     \
    }

} // namespace parchmint::bench

#endif // PARCHMINT_BENCH_BENCH_COMMON_HH
