/**
 * @file
 * Fuzzing throughput: executions per second for every registered
 * fuzz target, plus google-benchmark timers for the hot paths.
 *
 * The report section drives each target through the deterministic
 * engine for a fixed iteration budget (single worker, fixed seed,
 * no corpus writes) and prints execs/sec — the number that decides
 * how much property coverage a CI smoke minute buys. The perf gate
 * records these so a generator or checker that silently gets 10x
 * slower (and thus quietly shrinks fuzz coverage) shows up as a
 * perf regression, not as a mystery drop in executions.
 *
 * The google-benchmark timers isolate one generate+check cycle of
 * the cheapest (http_request) and the most structural (json_parse)
 * targets, and the shrinker on a synthetic finding.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "common/rng.hh"
#include "fuzz/engine.hh"
#include "fuzz/shrink.hh"
#include "fuzz/target.hh"

using namespace parchmint;

namespace
{

void
report()
{
    bench::heading("fuzz", "executions per second per target");

    fuzz::RunOptions options;
    options.iters = 400;
    options.seed = 1;
    options.jobs = 1;

    analysis::TextTable table;
    table.beginRow();
    table.cell(std::string("target"));
    table.cell(std::string("execs"));
    table.cell(std::string("execs/s"));
    table.cell(std::string("findings"));
    fuzz::RunSummary summary = fuzz::runFuzz(options);
    for (const fuzz::TargetStats &stats : summary.targets) {
        table.beginRow();
        table.cell(stats.name);
        table.cell(static_cast<int64_t>(stats.executions));
        table.cell(stats.execsPerSecond(), 0);
        table.cell(static_cast<int64_t>(stats.findings));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%llu exec(s) total, %zu finding(s)\n\n",
                static_cast<unsigned long long>(
                    summary.executions),
                summary.findings.size());
}

/** One generate+check cycle of a registered target. */
void
cycleTarget(benchmark::State &state, const char *name)
{
    const fuzz::Target &target = fuzz::findTarget(name);
    uint64_t i = 0;
    for (auto _ : state) {
        Rng rng(deriveSeed(1, std::to_string(i++)));
        std::string input = target.generate(rng);
        benchmark::DoNotOptimize(fuzz::runCheck(target, input));
    }
}

void
BM_FuzzCycleHttpRequest(benchmark::State &state)
{
    cycleTarget(state, "http_request");
}
BENCHMARK(BM_FuzzCycleHttpRequest)
    ->Unit(benchmark::kMicrosecond);

void
BM_FuzzCycleJsonParse(benchmark::State &state)
{
    cycleTarget(state, "json_parse");
}
BENCHMARK(BM_FuzzCycleJsonParse)->Unit(benchmark::kMicrosecond);

void
BM_FuzzShrinkSynthetic(benchmark::State &state)
{
    // A planted failure in a noisy input: the shrinker's budget,
    // not the check's cost, dominates here.
    fuzz::Target target;
    target.name = "bench_shrink";
    target.generate = [](Rng &) { return std::string(); };
    target.check = [](const std::string &input)
        -> std::optional<std::string> {
        if (input.find("!!") != std::string::npos)
            return "planted";
        return std::nullopt;
    };
    std::string noisy(200, 'x');
    noisy.insert(120, "!!");
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fuzz::shrinkInput(target, noisy, 500));
    }
}
BENCHMARK(BM_FuzzShrinkSynthetic)
    ->Unit(benchmark::kMillisecond);

} // namespace

PARCHMINT_BENCH_MAIN(report)
