/**
 * @file
 * Experiment T1 [R]: the benchmark characterization table.
 *
 * Regenerates the suite statistics table: per-benchmark layer,
 * component, connection, valve and I/O counts plus the structure of
 * the flow-layer connectivity graph (max degree, density, diameter,
 * cut vertices, planarity, connectedness). The google-benchmark
 * timers measure the characterization cost itself per benchmark.
 */

#include "bench_common.hh"

#include "analysis/suite_report.hh"
#include "suite/suite.hh"

using namespace parchmint;

namespace
{

void
report()
{
    bench::heading("T1", "benchmark characterization");
    auto rows = analysis::characterizeSuite();
    std::printf("%s\n",
                analysis::renderCharacterizationTable(rows).c_str());
}

void
BM_Characterize(benchmark::State &state)
{
    const auto &info =
        suite::standardSuite()[static_cast<size_t>(state.range(0))];
    Device device = info.build();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analysis::computeNetlistStats(device));
    }
    state.SetLabel(info.name);
}

} // namespace

BENCHMARK(BM_Characterize)->DenseRange(0, 11);

PARCHMINT_BENCH_MAIN(report)
