/**
 * @file
 * Parallel suite-sweep throughput benchmarks.
 *
 * Quantifies the execution engine (src/exec/): a full
 * place + route + validate sweep over the benchmark suite at one
 * worker versus one worker per hardware thread. The report block
 * records wall time, benchmarks/s, and the speedup; the registered
 * timers re-measure a smaller sweep under google-benchmark so the
 * perf trajectory captures both job counts. The routed netlists are
 * byte-identical across job counts (per-netlist derived seeds), so
 * every variant does exactly the same work.
 */

#include "bench_common.hh"

#include "exec/suite_runner.hh"
#include "exec/thread_pool.hh"
#include "suite/suite.hh"

using namespace parchmint;

namespace
{

/** Small, fast subset for the repeated google-benchmark timers. */
const std::vector<std::string> kSubset = {
    "droplet_transposer",
    "logic_inverter",
    "synthetic_grid",
    "synthetic_tree",
};

double
sweepMs(size_t jobs, const std::vector<std::string> &benchmarks)
{
    exec::SuiteRunOptions options;
    options.jobs = jobs;
    options.seed = 42;
    options.benchmarks = benchmarks;
    options.simulate = false;
    exec::SuiteRunSummary summary = exec::runSuite(options);
    for (const exec::SuiteJobResult &job : summary.jobs) {
        if (!job.ok())
            fatal("sweep benchmark failed: " + job.benchmark);
    }
    return static_cast<double>(summary.wallUs) / 1000.0;
}

void
report()
{
    bench::heading("EXEC", "parallel suite-sweep throughput");
    size_t hardware = exec::ThreadPool::hardwareThreads();
    std::printf("Full-suite place+route+validate sweep on the\n"
                "execution engine; %zu hardware thread(s).\n\n",
                hardware);
    std::printf("%8s %12s %14s %8s\n", "jobs", "wall_ms",
                "benchmarks/s", "speedup");

    size_t count = suite::standardSuite().size();
    double serial_ms = sweepMs(1, {});
    PM_OBS_GAUGE("exec.sweep.jobs1_ms", serial_ms);
    std::printf("%8zu %12.1f %14.2f %8.2f\n", size_t{1},
                serial_ms,
                1000.0 * static_cast<double>(count) / serial_ms,
                1.0);

    if (hardware > 1) {
        double parallel_ms = sweepMs(hardware, {});
        PM_OBS_GAUGE("exec.sweep.jobsN_ms", parallel_ms);
        PM_OBS_GAUGE("exec.sweep.speedup",
                     serial_ms / parallel_ms);
        std::printf("%8zu %12.1f %14.2f %8.2f\n", hardware,
                    parallel_ms,
                    1000.0 * static_cast<double>(count) /
                        parallel_ms,
                    serial_ms / parallel_ms);
    } else {
        std::printf("%8s %12s %14s %8s  (single-core host)\n",
                    "-", "-", "-", "-");
    }
    std::printf("\n");
}

void
BM_SubsetSweep(benchmark::State &state)
{
    size_t jobs = static_cast<size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(sweepMs(jobs, kSubset));
}

} // namespace

BENCHMARK(BM_SubsetSweep)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(2);

PARCHMINT_BENCH_MAIN(report)
