/**
 * @file
 * Ablation A2: router design choices.
 *
 * Ablates the router's three main mechanisms on the dense synthetic
 * benchmarks (where they matter), reporting strict completion (no
 * relaxed pass) so each mechanism's contribution is isolated:
 *
 *   (a) targeted rip-up-and-reroute rounds: 0 / 1 / 2 / 5 / 10;
 *   (b) bend penalty: 0 / 2 / 8 cell units;
 *   (c) grid resolution: cell size 100 / 200 / 400 um.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "place/annealing_placer.hh"
#include "route/router.hh"
#include "suite/suite.hh"

using namespace parchmint;

namespace
{

struct Outcome
{
    double completion;
    int64_t length;
    int bends;
    double wallMs;
};

Outcome
evaluate(const Device &netlist, const place::Placement &placement,
         const route::RouterOptions &options)
{
    Device device = netlist;
    bench::Stopwatch watch;
    route::RouteResult result =
        route::routeDevice(device, placement, options);
    return Outcome{result.completionRate(), result.totalLength,
                   result.totalBends, watch.elapsedMs()};
}

void
sweepTable(const char *title, const Device &device,
           const place::Placement &placement,
           const std::vector<std::pair<std::string,
                                       route::RouterOptions>>
               &variants)
{
    std::printf("%s (%s)\n", title, device.name().c_str());
    analysis::TextTable table;
    table.beginRow();
    table.cell(std::string("variant"));
    table.cell(std::string("strict cmpl%"));
    table.cell(std::string("len mm"));
    table.cell(std::string("bends"));
    table.cell(std::string("wall ms"));
    for (const auto &[label, options] : variants) {
        Outcome outcome = evaluate(device, placement, options);
        table.beginRow();
        table.cell(label);
        table.cell(100.0 * outcome.completion, 1);
        table.cell(static_cast<double>(outcome.length) / 1000.0, 1);
        table.cell(outcome.bends);
        table.cell(outcome.wallMs, 1);
    }
    std::printf("%s\n", table.render().c_str());
}

void
report()
{
    bench::heading("A2", "router ablations (strict mode, no relaxed "
                         "final pass)");
    for (const char *name : {"synthetic_mux", "synthetic_random"}) {
        Device device = suite::buildBenchmark(name);
        place::AnnealingOptions placer_options;
        placer_options.seed = 1;
        place::Placement placement =
            place::AnnealingPlacer(placer_options).place(device);

        std::vector<std::pair<std::string, route::RouterOptions>>
            rounds;
        for (size_t r : {0, 1, 2, 5, 10}) {
            route::RouterOptions options;
            options.relaxedFinalPass = false;
            options.ripupRounds = r;
            rounds.emplace_back("ripup=" + std::to_string(r),
                                options);
        }
        sweepTable("(a) rip-up rounds", device, placement, rounds);

        std::vector<std::pair<std::string, route::RouterOptions>>
            bends;
        for (double penalty : {0.0, 2.0, 8.0}) {
            route::RouterOptions options;
            options.relaxedFinalPass = false;
            options.bendPenalty = penalty;
            char label[32];
            std::snprintf(label, sizeof(label), "bend=%.0f",
                          penalty);
            bends.emplace_back(label, options);
        }
        sweepTable("(b) bend penalty", device, placement, bends);

        std::vector<std::pair<std::string, route::RouterOptions>>
            cells;
        for (int64_t size : {100, 200, 400}) {
            route::RouterOptions options;
            options.relaxedFinalPass = false;
            options.cellSize = size;
            cells.emplace_back("cell=" + std::to_string(size),
                               options);
        }
        sweepTable("(c) grid cell size", device, placement, cells);
    }
}

} // namespace

PARCHMINT_BENCH_MAIN(report)
