/**
 * @file
 * Experiment T3 [R]: validation coverage.
 *
 * Two report blocks:
 *   (a) per-benchmark validation outcome of the full pipeline
 *       (schema + device load + semantic rules), confirming the
 *       entire suite is clean;
 *   (b) the error-injection detection matrix: fourteen mutation
 *       classes applied to a clean benchmark document, each of
 *       which the pipeline must flag.
 *
 * Timers measure the validation pipeline cost per benchmark.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "core/serialize.hh"
#include "json/value.hh"
#include "schema/rules.hh"
#include "suite/suite.hh"

using namespace parchmint;

namespace
{

void
reportSuiteValidation()
{
    bench::heading("T3a", "suite validation outcomes");
    analysis::TextTable table;
    table.beginRow();
    table.cell(std::string("benchmark"));
    table.cell(std::string("errors"));
    table.cell(std::string("warnings"));
    table.cell(std::string("verdict"));

    for (const suite::BenchmarkInfo &info : suite::standardSuite()) {
        auto issues = schema::validateDocument(toJson(info.build()));
        size_t errors = 0;
        size_t warnings = 0;
        for (const schema::Issue &issue : issues) {
            if (issue.severity == schema::Severity::Error)
                ++errors;
            else
                ++warnings;
        }
        table.beginRow();
        table.cell(info.name);
        table.cell(errors);
        table.cell(warnings);
        table.cell(std::string(errors == 0 ? "valid" : "INVALID"));
    }
    std::printf("%s\n", table.render().c_str());
}

/** Mutation classes; mirrors the sweep in tests/rules_test.cc. */
struct Mutation
{
    const char *name;
    void (*apply)(json::Value &);
};

const Mutation mutations[] = {
    {"drop device name",
     [](json::Value &root) { root.erase("name"); }},
    {"empty layer list",
     [](json::Value &root) {
         root.set("layers", json::Value::makeArray());
     }},
    {"bad layer type",
     [](json::Value &root) {
         root.at("layers").at(size_t(0)).set("type",
                                             json::Value("GAS"));
     }},
    {"negative span",
     [](json::Value &root) {
         root.at("components")
             .at(size_t(0))
             .set("x-span", json::Value(-100));
     }},
    {"real-valued span",
     [](json::Value &root) {
         root.at("components")
             .at(size_t(0))
             .set("x-span", json::Value(12.5));
     }},
    {"string span",
     [](json::Value &root) {
         root.at("components")
             .at(size_t(0))
             .set("x-span", json::Value("wide"));
     }},
    {"dangling port layer",
     [](json::Value &root) {
         root.at("components")
             .at(size_t(0))
             .at("ports")
             .at(size_t(0))
             .set("layer", json::Value("phantom"));
     }},
    {"port off boundary",
     [](json::Value &root) {
         // Target a non-PORT component: PORT entities are exempt
         // from the boundary rule (centre terminal convention).
         auto &components = root.at("components");
         for (size_t i = 0; i < components.size(); ++i) {
             auto &component = components.at(i);
             if (component.at("entity").asString() == "PORT")
                 continue;
             auto &port = component.at("ports").at(size_t(0));
             port.set("x", json::Value(
                               component.at("x-span").asInteger() /
                               2));
             port.set("y", json::Value(
                               component.at("y-span").asInteger() /
                               2));
             return;
         }
     }},
    {"dangling connection source",
     [](json::Value &root) {
         json::Value target = json::Value::makeObject();
         target.set("component", json::Value("ghost"));
         root.at("connections")
             .at(size_t(0))
             .set("source", std::move(target));
     }},
    {"empty sink list",
     [](json::Value &root) {
         root.at("connections")
             .at(size_t(0))
             .set("sinks", json::Value::makeArray());
     }},
    {"duplicate component id",
     [](json::Value &root) {
         json::Value clone = root.at("components").at(size_t(0));
         root.at("components").append(std::move(clone));
     }},
    {"invalid id alphabet",
     [](json::Value &root) {
         root.at("components")
             .at(size_t(0))
             .set("id", json::Value("two words"));
     }},
    {"zero channel width",
     [](json::Value &root) {
         json::Value params = json::Value::makeObject();
         params.set("channelWidth", json::Value(0));
         root.at("connections")
             .at(size_t(0))
             .set("params", std::move(params));
     }},
    {"misspelled sink member",
     [](json::Value &root) {
         json::Value sink = json::Value::makeObject();
         sink.set("comp", json::Value("x"));
         root.at("connections")
             .at(size_t(0))
             .set("sinks",
                  json::Value::makeArray({std::move(sink)}));
     }},
};

void
reportMutationMatrix()
{
    bench::heading("T3b", "error-injection detection matrix");
    analysis::TextTable table;
    table.beginRow();
    table.cell(std::string("mutation"));
    table.cell(std::string("detected"));
    table.cell(std::string("errors"));

    size_t detected = 0;
    for (const Mutation &mutation : mutations) {
        json::Value root =
            toJson(suite::buildBenchmark("aquaflex_3b"));
        mutation.apply(root);
        auto issues = schema::validateDocument(root);
        size_t errors = 0;
        for (const schema::Issue &issue : issues) {
            if (issue.severity == schema::Severity::Error)
                ++errors;
        }
        if (errors > 0)
            ++detected;
        table.beginRow();
        table.cell(std::string(mutation.name));
        table.cellYesNo(errors > 0);
        table.cell(errors);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("detection rate: %zu/%zu\n\n", detected,
                std::size(mutations));
}

void
report()
{
    reportSuiteValidation();
    reportMutationMatrix();
}

void
BM_ValidatePipeline(benchmark::State &state)
{
    const auto &info =
        suite::standardSuite()[static_cast<size_t>(state.range(0))];
    json::Value document = toJson(info.build());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            schema::validateDocument(document));
    }
    state.SetLabel(info.name);
}

} // namespace

BENCHMARK(BM_ValidatePipeline)->DenseRange(0, 11);

PARCHMINT_BENCH_MAIN(report)
