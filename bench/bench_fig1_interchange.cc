/**
 * @file
 * Experiment F1 [R]: interchange cost vs netlist size.
 *
 * The report prints one series: synthetic grid netlists of growing
 * size, with the document size and the serialize / parse /
 * validate round-trip times. Expected shape: all three costs are
 * (near-)linear in the document size. The google-benchmark timers
 * expose the same three stages for rigorous measurement.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "core/deserialize.hh"
#include "core/serialize.hh"
#include "json/parse.hh"
#include "schema/rules.hh"
#include "suite/suite.hh"

using namespace parchmint;

namespace
{

constexpr size_t kGridSizes[] = {4, 8, 12, 16, 24, 32};

void
report()
{
    bench::heading("F1", "interchange cost vs netlist size "
                         "(synthetic grid family)");
    analysis::TextTable table;
    table.beginRow();
    table.cell(std::string("grid n"));
    table.cell(std::string("comps"));
    table.cell(std::string("conns"));
    table.cell(std::string("bytes"));
    table.cell(std::string("serialize ms"));
    table.cell(std::string("parse ms"));
    table.cell(std::string("validate ms"));

    for (size_t n : kGridSizes) {
        Device device = suite::syntheticGrid(n);
        // Warm-up pass, then a small average.
        std::string text = toJsonText(device);
        constexpr int repeats = 5;

        bench::Stopwatch serialize_watch;
        for (int i = 0; i < repeats; ++i)
            benchmark::DoNotOptimize(toJsonText(device));
        double serialize_ms =
            serialize_watch.elapsedMs() / repeats;

        bench::Stopwatch parse_watch;
        for (int i = 0; i < repeats; ++i)
            benchmark::DoNotOptimize(json::parse(text));
        double parse_ms = parse_watch.elapsedMs() / repeats;

        json::Value document = json::parse(text);
        bench::Stopwatch validate_watch;
        for (int i = 0; i < repeats; ++i) {
            benchmark::DoNotOptimize(
                schema::validateDocument(document));
        }
        double validate_ms =
            validate_watch.elapsedMs() / repeats;

        table.beginRow();
        table.cell(n);
        table.cell(device.components().size());
        table.cell(device.connections().size());
        table.cell(text.size());
        table.cell(serialize_ms, 3);
        table.cell(parse_ms, 3);
        table.cell(validate_ms, 3);
    }
    std::printf("%s\n", table.render().c_str());
}

void
BM_Serialize(benchmark::State &state)
{
    Device device =
        suite::syntheticGrid(static_cast<size_t>(state.range(0)));
    size_t bytes = toJsonText(device).size();
    for (auto _ : state)
        benchmark::DoNotOptimize(toJsonText(device));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * bytes));
}

void
BM_Parse(benchmark::State &state)
{
    Device device =
        suite::syntheticGrid(static_cast<size_t>(state.range(0)));
    std::string text = toJsonText(device);
    for (auto _ : state)
        benchmark::DoNotOptimize(json::parse(text));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * text.size()));
}

void
BM_ValidateDocument(benchmark::State &state)
{
    Device device =
        suite::syntheticGrid(static_cast<size_t>(state.range(0)));
    json::Value document = toJson(device);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            schema::validateDocument(document));
    }
}

void
BM_LoadDevice(benchmark::State &state)
{
    Device device =
        suite::syntheticGrid(static_cast<size_t>(state.range(0)));
    json::Value document = toJson(device);
    for (auto _ : state)
        benchmark::DoNotOptimize(fromJson(document));
}

} // namespace

BENCHMARK(BM_Serialize)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_Parse)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_ValidateDocument)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_LoadDevice)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

PARCHMINT_BENCH_MAIN(report)
