/**
 * @file
 * Continuous-flow mixing solver benchmarks.
 *
 * The report section is deterministic: the steady-state
 * concentration solve over unrouted suite netlists is a pure
 * function of the netlist (nominal channel lengths, no annealer in
 * the loop), so outlet counts and integerized quality numbers are
 * identical on every machine. Those totals are recorded as
 * registry counters (bench.mix.*) for the perf gate — drift there
 * means the solver's physics changed, not that the machine got
 * slower. The timers price one full solve (hydraulic build +
 * two linear systems) on the gradient ladder and the recirculating
 * grid.
 */

#include "bench_common.hh"

#include <cmath>
#include <vector>

#include "common/error.hh"
#include "obs/metrics.hh"
#include "sim/mixing.hh"
#include "suite/suite.hh"

using namespace parchmint;

namespace
{

void
report()
{
    bench::heading("MIX", "steady-state mixing solver");
    std::printf(
        "Concentration solve over every standard-suite netlist\n"
        "(unrouted, nominal channel lengths — annealer-free and\n"
        "machine-independent).\n\n");
    std::printf("%-22s %8s %8s %8s\n", "benchmark", "outlets",
                "quality", "mean_c");

    int64_t solved = 0;
    int64_t outlets = 0;
    int64_t quality_ppm = 0;
    int64_t mean_ppm = 0;
    for (const suite::BenchmarkInfo &info :
         suite::standardSuite()) {
        Device device = suite::buildBenchmark(info.name);
        try {
            sim::MixingResult mix = sim::solveMixing(device);
            ++solved;
            outlets += static_cast<int64_t>(mix.outlets.size());
            quality_ppm += static_cast<int64_t>(
                std::llround(mix.mixingQuality * 1e6));
            mean_ppm += static_cast<int64_t>(
                std::llround(mix.meanConcentration * 1e6));
            std::printf("%-22s %8zu %8.3f %8.3f\n",
                        info.name.c_str(), mix.outlets.size(),
                        mix.mixingQuality,
                        mix.meanConcentration);
        } catch (const UserError &error) {
            std::printf("%-22s %8s (%s)\n", info.name.c_str(),
                        "skip", error.what());
        }
    }
    std::printf("\nsolved %lld netlist(s), %lld outlet(s)\n\n",
                static_cast<long long>(solved),
                static_cast<long long>(outlets));

    obs::Registry &registry = obs::registry();
    registry.add("bench.mix.solved", solved);
    registry.add("bench.mix.outlets", outlets);
    registry.add("bench.mix.quality_ppm", quality_ppm);
    registry.add("bench.mix.mean_ppm", mean_ppm);
}

/** One full solve on the 5-outlet gradient ladder. */
void
BM_MixGradientGenerator(benchmark::State &state)
{
    Device device = suite::buildBenchmark("gradient_generator");
    for (auto _ : state) {
        sim::MixingResult mix = sim::solveMixing(device);
        benchmark::DoNotOptimize(mix.mixingQuality);
    }
}

/** One full solve on the recirculating synthetic grid. */
void
BM_MixSyntheticGrid(benchmark::State &state)
{
    Device device = suite::buildBenchmark("synthetic_grid");
    for (auto _ : state) {
        sim::MixingResult mix = sim::solveMixing(device);
        benchmark::DoNotOptimize(mix.mixingQuality);
    }
}

} // namespace

BENCHMARK(BM_MixGradientGenerator);
BENCHMARK(BM_MixSyntheticGrid);

PARCHMINT_BENCH_MAIN(report)
