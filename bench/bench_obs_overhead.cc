/**
 * @file
 * Observability overhead microbenchmarks.
 *
 * Verifies the zero-cost-when-disabled contract: a disabled span or
 * counter must cost no more than a branch on a global bool, and the
 * annealing placer (the library's hottest instrumented loop) must
 * not regress measurably with observability off. The enabled
 * variants quantify the recording price for when tracing is on.
 */

#include "bench_common.hh"

#include "place/annealing_placer.hh"
#include "suite/suite.hh"

using namespace parchmint;

namespace
{

void
report()
{
    bench::heading("OBS", "observability overhead");
    std::printf("Disabled-path cost of spans and counters, plus the\n"
                "annealing placer with observability off vs on.\n\n");
}

void
BM_SpanDisabled(benchmark::State &state)
{
    obs::setEnabled(false);
    for (auto _ : state) {
        PM_OBS_SPAN("bench.span", "bench");
        benchmark::ClobberMemory();
    }
}

void
BM_SpanEnabled(benchmark::State &state)
{
    obs::setEnabled(true);
    obs::reset();
    for (auto _ : state) {
        PM_OBS_SPAN("bench.span", "bench");
        benchmark::ClobberMemory();
    }
    obs::setEnabled(false);
    obs::reset();
}

void
BM_CounterDisabled(benchmark::State &state)
{
    obs::setEnabled(false);
    for (auto _ : state) {
        PM_OBS_COUNT("bench.counter", 1);
        benchmark::ClobberMemory();
    }
}

void
BM_CounterEnabled(benchmark::State &state)
{
    obs::setEnabled(true);
    obs::reset();
    for (auto _ : state) {
        PM_OBS_COUNT("bench.counter", 1);
        benchmark::ClobberMemory();
    }
    obs::setEnabled(false);
    obs::reset();
}

/** The acceptance gate: annealing with observability disabled. */
void
BM_AnnealObsOff(benchmark::State &state)
{
    obs::setEnabled(false);
    Device device = suite::buildBenchmark("droplet_transposer");
    place::AnnealingOptions options;
    options.steps = 30;
    for (auto _ : state) {
        place::AnnealingPlacer placer(options);
        benchmark::DoNotOptimize(placer.place(device));
    }
}

void
BM_AnnealObsOn(benchmark::State &state)
{
    obs::setEnabled(true);
    Device device = suite::buildBenchmark("droplet_transposer");
    place::AnnealingOptions options;
    options.steps = 30;
    for (auto _ : state) {
        obs::reset();
        place::AnnealingPlacer placer(options);
        benchmark::DoNotOptimize(placer.place(device));
    }
    obs::setEnabled(false);
    obs::reset();
}

} // namespace

BENCHMARK(BM_SpanDisabled);
BENCHMARK(BM_SpanEnabled);
BENCHMARK(BM_CounterDisabled);
BENCHMARK(BM_CounterEnabled);
BENCHMARK(BM_AnnealObsOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnnealObsOn)->Unit(benchmark::kMillisecond);

PARCHMINT_BENCH_MAIN(report)
