/**
 * @file
 * Experiment F2 [R]: placement quality comparison across the suite.
 *
 * For every benchmark, place with the random baseline, the greedy
 * row baseline and the simulated-annealing placer, and report HPWL,
 * overlap and bounding-box area. Expected shape: annealing beats
 * random on HPWL by a factor that grows with netlist size and
 * matches or beats row; random is the only placer with overlap.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "place/annealing_placer.hh"
#include "place/cost.hh"
#include "place/random_placer.hh"
#include "place/row_placer.hh"
#include "suite/suite.hh"

using namespace parchmint;

namespace
{

place::AnnealingOptions
benchAnnealingOptions()
{
    place::AnnealingOptions options;
    options.seed = 1;
    return options;
}

void
report()
{
    bench::heading("F2",
                   "placement quality: random vs row vs annealing");
    analysis::TextTable table;
    table.beginRow();
    table.cell(std::string("benchmark"));
    table.cell(std::string("rand hpwl"));
    table.cell(std::string("row hpwl"));
    table.cell(std::string("sa hpwl"));
    table.cell(std::string("rand/sa"));
    table.cell(std::string("row/sa"));
    table.cell(std::string("sa area mm^2"));
    table.cell(std::string("sa ovl"));

    for (const suite::BenchmarkInfo &info : suite::standardSuite()) {
        Device device = info.build();

        place::Placement random_placement =
            place::RandomPlacer(1).place(device);
        place::Placement row_placement =
            place::RowPlacer().place(device);
        place::AnnealingPlacer annealer(benchAnnealingOptions());
        place::Placement annealed = annealer.place(device);

        auto cost = [&](const place::Placement &placement) {
            return place::evaluatePlacement(device, placement);
        };
        place::PlacementCost random_cost = cost(random_placement);
        place::PlacementCost row_cost = cost(row_placement);
        place::PlacementCost sa_cost = cost(annealed);

        table.beginRow();
        table.cell(info.name);
        table.cell(random_cost.hpwl);
        table.cell(row_cost.hpwl);
        table.cell(sa_cost.hpwl);
        table.cell(static_cast<double>(random_cost.hpwl) /
                       static_cast<double>(
                           std::max<int64_t>(1, sa_cost.hpwl)),
                   2);
        table.cell(static_cast<double>(row_cost.hpwl) /
                       static_cast<double>(
                           std::max<int64_t>(1, sa_cost.hpwl)),
                   2);
        table.cell(static_cast<double>(sa_cost.boundingArea) / 1e6,
                   1);
        table.cell(sa_cost.overlapArea);
    }
    std::printf("%s\n", table.render().c_str());
}

void
BM_RandomPlace(benchmark::State &state)
{
    Device device = suite::buildBenchmark("general_purpose_mfd");
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            place::RandomPlacer(1).place(device));
    }
}

void
BM_RowPlace(benchmark::State &state)
{
    Device device = suite::buildBenchmark("general_purpose_mfd");
    for (auto _ : state)
        benchmark::DoNotOptimize(place::RowPlacer().place(device));
}

void
BM_AnnealingPlace(benchmark::State &state)
{
    Device device = suite::buildBenchmark("general_purpose_mfd");
    place::AnnealingOptions options = benchAnnealingOptions();
    options.steps = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        place::AnnealingPlacer placer(options);
        benchmark::DoNotOptimize(placer.place(device));
    }
    state.SetLabel("steps=" + std::to_string(state.range(0)));
}

} // namespace

BENCHMARK(BM_RandomPlace);
BENCHMARK(BM_RowPlace);
BENCHMARK(BM_AnnealingPlace)->Arg(20)->Arg(40)->Arg(80);

PARCHMINT_BENCH_MAIN(report)
