/**
 * @file
 * Synthetic-generator scaling benchmarks (experiment F7).
 *
 * The report walks the corpus-size ladder 12 → 100 → 1000 → 10000:
 * every tier expands one fixed spec per topology-family rotation
 * and measures generation throughput (wall-clock, recorded but
 * never gated). The machine-independent totals — netlist count,
 * component/connection/byte sums, rule errors over the PnR sample —
 * are recorded as registry counters (bench.gen.*) for the perf
 * gate: the generator derives every draw from
 * deriveSeed(spec.seed, instance name), so any counter drift means
 * the grammar changed, not that the machine got slower.
 *
 * The full place-and-route pipeline is priced on a bounded sample
 * (min(tier, 12) instances per tier) so the report stays minutes-
 * free while still proving generated netlists survive PnR and
 * validate clean at every scale. The timers price one netlist
 * expansion per family.
 */

#include "bench_common.hh"

#include <cstdint>
#include <string>
#include <vector>

#include "gen/generator.hh"
#include "gen/spec.hh"
#include "obs/metrics.hh"
#include "place/annealing_placer.hh"
#include "route/router.hh"
#include "schema/rules.hh"

using namespace parchmint;

namespace
{

/** One fixed spec per tier; the family rotates so the ladder
 * covers the whole grammar, and the windows stay small enough
 * that the 10k tier generates in seconds. */
gen::GenSpec
tierSpec(size_t count, gen::Family family)
{
    gen::GenSpec spec;
    spec.name = "f7";
    spec.family = family;
    spec.seed = 7;
    spec.count = count;
    spec.minComponents = 8;
    spec.maxComponents = 24;
    spec.maxFanout = 2;
    return spec;
}

void
report()
{
    bench::heading("F7", "synthetic generation scaling");
    std::printf(
        "Corpus-size ladder over the generator grammar: per tier,\n"
        "expand every instance (throughput), then place, route and\n"
        "validate a bounded sample. Totals are seed-pinned and\n"
        "machine-independent; only the rates vary per machine.\n\n");
    std::printf("%8s %-10s %10s %12s %8s %8s %8s\n", "tier",
                "family", "components", "netlists/s", "sample",
                "routed", "errors");

    static const struct
    {
        size_t count;
        gen::Family family;
    } tiers[] = {
        {12, gen::Family::Chain},
        {100, gen::Family::Grid},
        {1000, gen::Family::Ladder},
        {10000, gen::Family::RandomDag},
    };

    int64_t netlists = 0;
    int64_t components = 0;
    int64_t connections = 0;
    int64_t bytes = 0;
    int64_t samples = 0;
    int64_t routed_nets = 0;
    int64_t total_nets = 0;
    int64_t rule_errors = 0;

    for (const auto &tier : tiers) {
        gen::GenSpec spec = tierSpec(tier.count, tier.family);

        // Expansion throughput over the full tier. Component and
        // connection totals come from the Device (no re-parse);
        // byte totals from the canonical text the corpus stores.
        int64_t tier_components = 0;
        bench::Stopwatch watch;
        for (size_t i = 0; i < spec.count; ++i) {
            Device device = gen::generateNetlist(spec, i);
            tier_components += static_cast<int64_t>(
                device.components().size());
            connections += static_cast<int64_t>(
                device.connections().size());
            bytes += static_cast<int64_t>(
                gen::generateNetlistText(spec, i).size());
        }
        double seconds = watch.elapsedMs() / 1e3;
        double rate = seconds > 0.0
                          ? static_cast<double>(spec.count) /
                                seconds
                          : 0.0;
        netlists += static_cast<int64_t>(spec.count);
        components += tier_components;

        // Full-pipeline sample: place, route, write back, check
        // rules. Deterministic at the pinned seed, so the routed
        // and error totals gate like the annealer's counters.
        size_t sample = spec.count < 12 ? spec.count : 12;
        int64_t tier_routed = 0;
        int64_t tier_errors = 0;
        for (size_t i = 0; i < sample; ++i) {
            Device device = gen::generateNetlist(spec, i);
            place::AnnealingOptions annealing;
            annealing.seed = spec.seed;
            place::AnnealingPlacer placer(annealing);
            place::Placement placement = placer.place(device);
            route::RouteResult result =
                route::routeDevice(device, placement);
            tier_routed +=
                static_cast<int64_t>(result.routedCount);
            total_nets += static_cast<int64_t>(result.nets.size());
            placement.writeTo(device);
            for (const schema::Issue &issue :
                 schema::checkRules(device)) {
                if (issue.severity == schema::Severity::Error)
                    ++tier_errors;
            }
        }
        samples += static_cast<int64_t>(sample);
        routed_nets += tier_routed;
        rule_errors += tier_errors;

        std::printf("%8zu %-10s %10lld %12.0f %8zu %8lld %8lld\n",
                    spec.count, gen::familyName(spec.family),
                    static_cast<long long>(tier_components), rate,
                    sample, static_cast<long long>(tier_routed),
                    static_cast<long long>(tier_errors));
    }

    std::printf("\ngenerated %lld netlist(s), %lld component(s), "
                "%lld connection(s);\nPnR sample: %lld netlist(s), "
                "%lld/%lld net(s) routed, %lld rule error(s)\n\n",
                static_cast<long long>(netlists),
                static_cast<long long>(components),
                static_cast<long long>(connections),
                static_cast<long long>(samples),
                static_cast<long long>(routed_nets),
                static_cast<long long>(total_nets),
                static_cast<long long>(rule_errors));

    obs::Registry &registry = obs::registry();
    registry.add("bench.gen.netlists", netlists);
    registry.add("bench.gen.components", components);
    registry.add("bench.gen.connections", connections);
    registry.add("bench.gen.bytes", bytes);
    registry.add("bench.gen.pnr_samples", samples);
    registry.add("bench.gen.routed_nets", routed_nets);
    registry.add("bench.gen.total_nets", total_nets);
    registry.add("bench.gen.rule_errors", rule_errors);
}

/** One expansion per family at the standard window. */
void
generateOne(benchmark::State &state, gen::Family family)
{
    gen::GenSpec spec = tierSpec(1, family);
    for (auto _ : state) {
        std::string text = gen::generateNetlistText(spec, 0);
        benchmark::DoNotOptimize(text.data());
    }
}

void
BM_GenerateChain(benchmark::State &state)
{
    generateOne(state, gen::Family::Chain);
}

void
BM_GenerateGrid(benchmark::State &state)
{
    generateOne(state, gen::Family::Grid);
}

void
BM_GenerateTree(benchmark::State &state)
{
    generateOne(state, gen::Family::Tree);
}

void
BM_GenerateLadder(benchmark::State &state)
{
    generateOne(state, gen::Family::Ladder);
}

void
BM_GenerateRandomDag(benchmark::State &state)
{
    generateOne(state, gen::Family::RandomDag);
}

} // namespace

BENCHMARK(BM_GenerateChain);
BENCHMARK(BM_GenerateGrid);
BENCHMARK(BM_GenerateTree);
BENCHMARK(BM_GenerateLadder);
BENCHMARK(BM_GenerateRandomDag);

PARCHMINT_BENCH_MAIN(report)
