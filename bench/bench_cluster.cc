/**
 * @file
 * Cluster serving benchmarks: ring sharding quality, coalescing
 * under a synchronized burst, and router latency vs offered load
 * over real loopback sockets.
 *
 * The machine-independent totals are recorded as registry counters
 * (bench.cluster.*) for the perf gate:
 *
 *  - Ring shares and the moved-key count on backend removal are
 *    pure functions of svc::contentHash and the ring construction,
 *    so any drift means the hash or the ring changed, not that the
 *    machine got slower.
 *  - The coalescing burst gates its leader so all K-1 other
 *    requests *must* join the flight before it completes; leaders
 *    and followers per round are therefore exact, not a race the
 *    benchmark usually wins.
 *  - The sweep issues a fixed request count per concurrency level,
 *    so bench.cluster.sweep.requests / errors are exact; the
 *    latency percentiles and throughput are wall-clock,
 *    machine-dependent, and recorded (histograms + echoed lines),
 *    never gated.
 *
 * The timers price a ring lookup (the per-request routing cost)
 * and the warm loopback round trip through router + backend.
 */

#include "bench_common.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "analysis/table.hh"
#include "cluster/coalesce.hh"
#include "cluster/ring.hh"
#include "cluster/router.hh"
#include "core/serialize.hh"
#include "json/write.hh"
#include "obs/metrics.hh"
#include "suite/suite.hh"
#include "svc/cache.hh"
#include "svc/client.hh"
#include "svc/server.hh"
#include "svc/service.hh"

using namespace parchmint;

namespace
{

std::string
netlistBody(const std::string &benchmark)
{
    json::WriteOptions options;
    options.pretty = false;
    return json::write(toJson(suite::buildBenchmark(benchmark)),
                       options);
}

std::vector<std::string>
syntheticBackends(size_t count)
{
    std::vector<std::string> backends;
    for (size_t i = 0; i < count; ++i)
        backends.push_back("10.0.0." + std::to_string(i + 1) +
                           ":8081");
    return backends;
}

/** Ring sharding quality: share spread and remap-on-removal. */
void
reportRing()
{
    bench::heading("cluster", "consistent-hash ring quality");

    const size_t keys = 20000;
    const size_t backends = 4;
    cluster::HashRing ring(syntheticBackends(backends), 128);
    cluster::HashRing smaller(
        syntheticBackends(backends - 1), 128);

    std::map<std::string, int64_t> share;
    int64_t moved = 0;
    for (size_t i = 0; i < keys; ++i) {
        uint64_t key = svc::contentHash(
            "netlist-" + std::to_string(i));
        const std::string &owner = ring.owner(key);
        ++share[owner];
        // The removed backend is the highest-numbered one, which
        // smaller does not have; every key moving off a *survivor*
        // would be a consistency bug, so count all moves.
        if (owner != smaller.owner(key))
            ++moved;
    }
    int64_t largest = 0, smallest = keys;
    for (const auto &[backend, count] : share) {
        largest = std::max(largest, count);
        smallest = std::min(smallest, count);
    }

    std::printf("ring: %zu keys sharded across %zu backends, "
                "share %lld..%lld (ideal %lld), "
                "%lld moved on removal (ideal ~%lld)\n\n",
                keys, backends, static_cast<long long>(smallest),
                static_cast<long long>(largest),
                static_cast<long long>(keys / backends),
                static_cast<long long>(moved),
                static_cast<long long>(keys / backends));

    obs::Registry &registry = obs::registry();
    registry.add("bench.cluster.ring.keys",
                 static_cast<int64_t>(keys));
    registry.add("bench.cluster.ring.largest_share", largest);
    registry.add("bench.cluster.ring.smallest_share", smallest);
    registry.add("bench.cluster.ring.moved_on_removal", moved);
}

/** Coalescing: K synchronized identical requests, one compute. */
void
reportCoalesce()
{
    bench::heading("cluster", "single-flight coalescing");

    const size_t clients = 8;
    const size_t rounds = 8;
    std::atomic<uint64_t> computes{0};
    cluster::Coalescer coalescer;

    for (size_t round = 0; round < rounds; ++round) {
        std::mutex gate_mutex;
        std::condition_variable gate_cv;
        bool gate_open = false;
        auto compute = [&] {
            computes.fetch_add(1);
            std::unique_lock<std::mutex> lock(gate_mutex);
            gate_cv.wait(lock, [&] { return gate_open; });
            svc::HttpResponse response;
            response.status = 200;
            return response;
        };
        std::vector<std::thread> threads;
        std::string key = "round-" + std::to_string(round);
        for (size_t i = 0; i < clients; ++i) {
            threads.emplace_back(
                [&] { coalescer.run(key, compute); });
        }
        // Every other request must fold into the leader's flight
        // before it is released, so the counters are exact.
        while (coalescer.stats().followers <
               (round + 1) * (clients - 1))
            std::this_thread::yield();
        {
            std::lock_guard<std::mutex> lock(gate_mutex);
            gate_open = true;
        }
        gate_cv.notify_all();
        for (std::thread &thread : threads)
            thread.join();
    }

    cluster::CoalesceStats stats = coalescer.stats();
    std::printf("coalesced: %zu rounds x %zu identical requests "
                "-> %llu backend calls, %llu followers\n\n",
                rounds, clients,
                static_cast<unsigned long long>(computes.load()),
                static_cast<unsigned long long>(stats.followers));

    obs::Registry &registry = obs::registry();
    registry.add("bench.cluster.coalesce.leaders",
                 static_cast<int64_t>(stats.leaders));
    registry.add("bench.cluster.coalesce.followers",
                 static_cast<int64_t>(stats.followers));
    registry.add("bench.cluster.coalesce.backend_calls",
                 static_cast<int64_t>(computes.load()));
}

/** Closed-loop latency vs offered load through a real router. */
void
reportSweep()
{
    bench::heading("cluster",
                   "router latency vs offered load (closed loop)");

    svc::NetlistService service1, service2;
    svc::HttpServer backend1(service1), backend2(service2);
    backend1.start();
    backend2.start();

    cluster::RouterOptions options;
    options.backends = {
        "127.0.0.1:" + std::to_string(backend1.port()),
        "127.0.0.1:" + std::to_string(backend2.port())};
    options.probeInterval = std::chrono::milliseconds(0);
    cluster::Router router(options);
    svc::ServerOptions front_options;
    front_options.threads = 8;
    svc::HttpServer front(router, front_options);
    front.start();

    // One payload per worker: concurrent *identical* requests
    // would coalesce (nondeterministically, depending on overlap),
    // which is great for the cluster and terrible for a gateable
    // backend-request counter. Distinct per-worker payloads keep
    // every request a real backend call. Warm all caches first so
    // the sweep prices the serving stack, not the first placement.
    std::vector<std::string> payloads = {
        netlistBody("cell_trap_array"),
        netlistBody("gradient_generator"),
        netlistBody("logic_inverter"),
        netlistBody("droplet_transposer")};
    {
        svc::HttpClient warmup("127.0.0.1", front.port());
        for (const std::string &payload : payloads)
            warmup.post("/v1/validate", payload);
    }

    obs::Registry &registry = obs::registry();
    analysis::TextTable table;
    table.beginRow();
    table.cell(std::string("concurrency"));
    table.cell(std::string("requests"));
    table.cell(std::string("throughput rps"));
    table.cell(std::string("p50 ms"));
    table.cell(std::string("p99 ms"));

    const size_t per_point = 400;
    int64_t total_requests = 0, total_errors = 0;
    for (size_t concurrency : {1, 2, 4}) {
        obs::Histogram latency;
        std::mutex latency_mutex;
        std::atomic<int64_t> errors{0};
        std::vector<std::thread> workers;
        bench::Stopwatch watch;
        for (size_t w = 0; w < concurrency; ++w) {
            workers.emplace_back([&, w] {
                svc::HttpClient client("127.0.0.1",
                                       front.port());
                size_t quota = per_point / concurrency;
                const std::string &payload =
                    payloads[w % payloads.size()];
                for (size_t i = 0; i < quota; ++i) {
                    bench::Stopwatch request_watch;
                    svc::HttpResponse response =
                        client.post("/v1/validate", payload);
                    double ms =
                        request_watch.elapsedUs() / 1000.0;
                    if (response.status != 200)
                        errors.fetch_add(1);
                    std::lock_guard<std::mutex> lock(
                        latency_mutex);
                    latency.record(ms);
                }
            });
        }
        for (std::thread &worker : workers)
            worker.join();
        double elapsed_s = watch.elapsedUs() / 1e6;
        obs::HistogramSummary summary = latency.summary();
        double throughput =
            elapsed_s > 0.0
                ? static_cast<double>(latency.count()) /
                      elapsed_s
                : 0.0;
        table.beginRow();
        table.cell(static_cast<double>(concurrency), 0);
        table.cell(static_cast<double>(latency.count()), 0);
        table.cell(throughput, 1);
        table.cell(summary.p50, 3);
        table.cell(summary.p99, 3);
        std::printf("cluster sweep c=%zu: requests=%zu "
                    "errors=%lld throughput_rps=%.1f "
                    "p50_ms=%.3f p99_ms=%.3f\n",
                    concurrency, latency.count(),
                    static_cast<long long>(errors.load()),
                    throughput, summary.p50, summary.p99);
        for (double ms : latency.samples())
            registry.record("bench.cluster.sweep.request_ms",
                            ms);
        total_requests += static_cast<int64_t>(latency.count());
        total_errors += errors.load();
    }
    std::printf("\n%s\n", table.render().c_str());

    registry.add("bench.cluster.sweep.requests", total_requests);
    registry.add("bench.cluster.sweep.errors", total_errors);

    front.stop();
    backend1.stop();
    backend2.stop();
}

void
report()
{
    reportRing();
    reportCoalesce();
    reportSweep();
}

void
BM_RingLookup(benchmark::State &state)
{
    cluster::HashRing ring(syntheticBackends(8), 128);
    uint64_t key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ring.owner(key));
        ++key;
    }
}
BENCHMARK(BM_RingLookup)->Unit(benchmark::kNanosecond);

void
BM_RouterLoopbackValidateWarm(benchmark::State &state)
{
    svc::NetlistService service;
    svc::HttpServer backend(service);
    backend.start();
    cluster::RouterOptions options;
    options.backends = {"127.0.0.1:" +
                        std::to_string(backend.port())};
    options.probeInterval = std::chrono::milliseconds(0);
    cluster::Router router(options);
    svc::HttpServer front(router);
    front.start();
    svc::HttpClient client("127.0.0.1", front.port());
    std::string body = netlistBody("cell_trap_array");
    client.post("/v1/validate", body);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            client.post("/v1/validate", body));
    }
    front.stop();
    backend.stop();
}
BENCHMARK(BM_RouterLoopbackValidateWarm)
    ->Unit(benchmark::kMicrosecond);

} // namespace

PARCHMINT_BENCH_MAIN(report)
