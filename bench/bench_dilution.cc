/**
 * @file
 * Dilution-tree synthesizer benchmarks.
 *
 * The report section sweeps every target k/256 at tolerance 1/512
 * and records the aggregate ladder depth, reagent/buffer loads,
 * and Farey denominators as registry counters (bench.dilute.*).
 * The sweep is pure integer/dyadic arithmetic — identical on every
 * machine — so the perf gate diffs the counters against a
 * checked-in baseline: drift means the synthesis algorithm
 * changed, not that the machine got slower. The timers price one
 * synthesis (depth scan + Farey walk + netlist emission) at an
 * easy and a worst-case tolerance.
 */

#include "bench_common.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "sim/dilution.hh"

using namespace parchmint;

namespace
{

void
report()
{
    bench::heading("DILUTE", "dilution-tree synthesizer");
    std::printf(
        "Every target k/256 at tolerance 1/512: ladder depth,\n"
        "reagent cost, and the minimal Farey denominator.\n\n");

    int64_t syntheses = 0;
    int64_t depth_total = 0;
    int64_t reagent_total = 0;
    int64_t buffer_total = 0;
    int64_t farey_den_total = 0;
    int64_t max_depth = 0;
    for (int k = 0; k <= 256; ++k) {
        sim::DilutionSpec spec;
        spec.target = static_cast<double>(k) / 256.0;
        spec.tolerance = 1.0 / 512.0;
        sim::DilutionPlan plan = sim::synthesizeDilution(spec);
        ++syntheses;
        depth_total += static_cast<int64_t>(plan.depth);
        reagent_total += static_cast<int64_t>(plan.reagentUnits);
        buffer_total += static_cast<int64_t>(plan.bufferUnits);
        farey_den_total +=
            static_cast<int64_t>(plan.fareyDenominator);
        max_depth = std::max(max_depth,
                             static_cast<int64_t>(plan.depth));
    }
    std::printf("%lld syntheses: total depth %lld (max %lld), "
                "%lld reagent + %lld buffer loads,\n"
                "Farey denominator total %lld\n\n",
                static_cast<long long>(syntheses),
                static_cast<long long>(depth_total),
                static_cast<long long>(max_depth),
                static_cast<long long>(reagent_total),
                static_cast<long long>(buffer_total),
                static_cast<long long>(farey_den_total));

    obs::Registry &registry = obs::registry();
    registry.add("bench.dilute.syntheses", syntheses);
    registry.add("bench.dilute.depth_total", depth_total);
    registry.add("bench.dilute.reagent_total", reagent_total);
    registry.add("bench.dilute.buffer_total", buffer_total);
    registry.add("bench.dilute.farey_den_total", farey_den_total);
}

/** An easy target: shallow ladder, short Farey walk. */
void
BM_DiluteEasy(benchmark::State &state)
{
    sim::DilutionSpec spec;
    spec.target = 0.3;
    spec.tolerance = 1.0 / 128.0;
    for (auto _ : state) {
        sim::DilutionPlan plan = sim::synthesizeDilution(spec);
        benchmark::DoNotOptimize(plan.numerator);
    }
}

/** A tight tolerance at an awkward irrational-ish target: full
 * depth scan and a long mediant walk. */
void
BM_DiluteTight(benchmark::State &state)
{
    sim::DilutionSpec spec;
    spec.target = 0.381966011250105; // 2 - golden ratio.
    spec.tolerance = 1e-7;
    spec.maxDepth = 30;
    for (auto _ : state) {
        sim::DilutionPlan plan = sim::synthesizeDilution(spec);
        benchmark::DoNotOptimize(plan.numerator);
    }
}

} // namespace

BENCHMARK(BM_DiluteEasy);
BENCHMARK(BM_DiluteTight);

PARCHMINT_BENCH_MAIN(report)
