/**
 * @file
 * Structured-logger overhead microbenchmarks.
 *
 * Extends the PR-1 zero-cost gate to the logger: a PM_LOG_* site
 * that does not fire — logger off entirely, or the line below the
 * configured level — must cost no more than one relaxed atomic
 * load and a compare, the same budget as a disabled span. The
 * enabled variant prices a full line (timestamp, bucket, JSON
 * formatting, /dev/null write); the rate-limited variant prices
 * the drop path an overloaded site pays once its bucket is empty.
 *
 * The report section is the deterministic half: with refill 0 and
 * burst 1000, exactly 1000 of 10000 attempts are written and 9000
 * dropped, independent of machine speed. Those totals are recorded
 * as registry counters (bench.log.written / bench.log.dropped) so
 * the perf gate can diff them against a checked-in baseline —
 * counter drift here means the rate limiter's semantics changed,
 * not that the machine got slower.
 */

#include "bench_common.hh"

#include "obs/log.hh"
#include "obs/metrics.hh"

using namespace parchmint;

namespace
{

void
report()
{
    bench::heading("LOG", "structured-logger overhead");
    std::printf(
        "Disabled/below-level sites vs a full line to /dev/null,\n"
        "plus the deterministic token-bucket budget.\n\n");

    // Deterministic rate-limit section: burst 1000, refill 0 —
    // the first 1000 lines pass, the remaining 9000 drop, exactly,
    // on every machine.
    obs::Logger &logger = obs::logger();
    logger.resetForTest();
    logger.openSink("/dev/null", obs::LogLevel::Info);
    logger.setRateLimit({1000.0, 0.0});
    for (int i = 0; i < 10000; ++i) {
        PM_LOG_INFO("bench.log.budget", "line",
                    {{"i", std::to_string(i)}});
    }
    obs::LogStats stats = logger.stats();
    logger.resetForTest();
    std::printf("token bucket (burst 1000, refill 0): "
                "%llu/10000 written, %llu dropped\n\n",
                static_cast<unsigned long long>(stats.written),
                static_cast<unsigned long long>(stats.dropped));
    obs::registry().add("bench.log.written",
                        static_cast<int64_t>(stats.written));
    obs::registry().add("bench.log.dropped",
                        static_cast<int64_t>(stats.dropped));
}

/** The gate: logger off, the site is one load and a branch. */
void
BM_LogDisabled(benchmark::State &state)
{
    obs::logger().resetForTest();
    for (auto _ : state) {
        PM_LOG_INFO("bench.log.site", "never fires");
        benchmark::ClobberMemory();
    }
}

/** Sink attached, but the line's level is filtered out. */
void
BM_LogBelowLevel(benchmark::State &state)
{
    obs::Logger &logger = obs::logger();
    logger.resetForTest();
    logger.openSink("/dev/null", obs::LogLevel::Warn);
    for (auto _ : state) {
        PM_LOG_DEBUG("bench.log.site", "filtered");
        benchmark::ClobberMemory();
    }
    logger.resetForTest();
}

/** A full line with two fields, formatted and written. */
void
BM_LogEnabled(benchmark::State &state)
{
    obs::Logger &logger = obs::logger();
    logger.resetForTest();
    logger.openSink("/dev/null", obs::LogLevel::Info);
    // Effectively unlimited: the bucket never empties.
    logger.setRateLimit({1e18, 0.0});
    for (auto _ : state) {
        PM_LOG_INFO("bench.log.site", "served",
                    {{"status", "200"}, {"ms", "1.42"}});
        benchmark::ClobberMemory();
    }
    logger.resetForTest();
}

/** The drop path: bucket exhausted, line counted and discarded. */
void
BM_LogRateLimited(benchmark::State &state)
{
    obs::Logger &logger = obs::logger();
    logger.resetForTest();
    logger.openSink("/dev/null", obs::LogLevel::Info);
    logger.setRateLimit({0.0, 0.0});
    for (auto _ : state) {
        PM_LOG_INFO("bench.log.site", "dropped",
                    {{"status", "200"}, {"ms", "1.42"}});
        benchmark::ClobberMemory();
    }
    logger.resetForTest();
}

} // namespace

BENCHMARK(BM_LogDisabled);
BENCHMARK(BM_LogBelowLevel);
BENCHMARK(BM_LogEnabled);
BENCHMARK(BM_LogRateLimited);

PARCHMINT_BENCH_MAIN(report)
