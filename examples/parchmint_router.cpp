/**
 * @file
 * parchmint_router: the cluster front end.
 *
 * Consistent-hashes content-addressed requests across N parchmintd
 * backends (src/cluster/router.hh): a given netlist always lands
 * on the same backend, so the cluster's two-level caches shard
 * instead of duplicating; identical in-flight requests coalesce
 * into one backend call; dead backends are ejected by the health
 * tracker and re-admitted by the background prober when they come
 * back. Serves until SIGINT/SIGTERM, then drains like parchmintd:
 * prober stops, listener closes, in-flight requests flush.
 *
 * Run:  ./parchmint_router --backend HOST:PORT
 *           [--backend HOST:PORT ...]
 *           [--port P] [--bind ADDR] [--threads N] [--seed S]
 *           [--vnodes V] [--failure-threshold K]
 *           [--cooldown-ms C] [--probe-interval-ms I]
 *           [--backend-timeout-ms T] [--pool-idle N]
 *           [--port-file PATH]
 *           [--log-level debug|info|warn|error|off]
 *           [--log-json PATH|-]
 *
 * `--backend` repeats, one per parchmintd. `--probe-interval-ms 0`
 * disables background probing (health is then fed by live traffic
 * only). `--port-file` writes the bound port, for scripts and the
 * CI cluster smoke test. The router's own /healthz, /statsz
 * (parchmint-router-stats-v1), and /tracez are served locally;
 * everything else is forwarded.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/router.hh"
#include "common/cli.hh"
#include "common/error.hh"
#include "obs/log.hh"
#include "svc/server.hh"

using namespace parchmint;

namespace
{

/** Set by the signal handler; the main loop polls it. */
volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --backend HOST:PORT [--backend HOST:PORT ...]\n"
        "          [--port P] [--bind ADDR] [--threads N]\n"
        "          [--seed S] [--vnodes V]\n"
        "          [--failure-threshold K] [--cooldown-ms C]\n"
        "          [--probe-interval-ms I]\n"
        "          [--backend-timeout-ms T] [--pool-idle N]\n"
        "          [--port-file PATH]\n"
        "          [--log-level debug|info|warn|error|off]\n"
        "          [--log-json PATH|-]\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        cluster::RouterOptions router_options;
        svc::ServerOptions server_options;
        std::string port_file;
        std::string log_json;
        obs::LogLevel log_level = obs::LogLevel::Info;

        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            std::string value;
            if (cli::matchValueFlag(argc, argv, i, "--backend",
                                    value)) {
                router_options.backends.push_back(value);
            } else if (cli::matchValueFlag(argc, argv, i, "--port",
                                           value)) {
                server_options.port = static_cast<uint16_t>(
                    cli::parseUint64(value, "--port", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i, "--bind",
                                           value)) {
                server_options.bindAddress = value;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--threads", value)) {
                server_options.threads = static_cast<size_t>(
                    cli::parseUint64(value, "--threads",
                                     argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i, "--seed",
                                           value)) {
                router_options.seed =
                    cli::parseSeed(value, argv[0]);
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--vnodes", value)) {
                router_options.vnodes = static_cast<size_t>(
                    cli::parseUint64(value, "--vnodes",
                                     argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--failure-threshold",
                                           value)) {
                router_options.failureThreshold =
                    static_cast<uint32_t>(cli::parseUint64(
                        value, "--failure-threshold", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--cooldown-ms",
                                           value)) {
                router_options.cooldown =
                    std::chrono::milliseconds(
                        static_cast<int64_t>(cli::parseUint64(
                            value, "--cooldown-ms", argv[0])));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--probe-interval-ms",
                                           value)) {
                router_options.probeInterval =
                    std::chrono::milliseconds(
                        static_cast<int64_t>(cli::parseUint64(
                            value, "--probe-interval-ms",
                            argv[0])));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--backend-timeout-ms",
                                           value)) {
                router_options.requestTimeout =
                    std::chrono::milliseconds(
                        static_cast<int64_t>(cli::parseUint64(
                            value, "--backend-timeout-ms",
                            argv[0])));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--pool-idle",
                                           value)) {
                router_options.maxIdlePerBackend =
                    static_cast<size_t>(cli::parseUint64(
                        value, "--pool-idle", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--port-file",
                                           value)) {
                port_file = value;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--log-level",
                                           value)) {
                if (!obs::parseLogLevel(value, log_level))
                    cli::usageError(argv[0],
                                    "bad --log-level \"" + value +
                                        "\" (want debug|info|"
                                        "warn|error|off)");
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--log-json", value)) {
                log_json = value;
            } else {
                usage(argv[0]);
                cli::usageError(argv[0], "unknown argument \"" +
                                             arg + "\"");
            }
        }
        if (router_options.backends.empty()) {
            usage(argv[0]);
            cli::usageError(argv[0],
                            "at least one --backend required");
        }

        if (!log_json.empty()) {
            if (log_json == "-")
                obs::logger().setSink(stderr, log_level);
            else
                obs::logger().openSink(log_json, log_level);
        }

        cluster::Router router(router_options);
        if (router_options.probeInterval.count() > 0) {
            // Know the initial cluster state before serving: a
            // backend that is down at startup is ejected by its
            // first probes, not by client traffic.
            router.probeOnce();
            router.startProbing();
        }
        svc::HttpServer server(router, server_options);
        server.start();
        std::printf("parchmint_router listening on %s:%u "
                    "(%zu backends)\n",
                    server_options.bindAddress.c_str(),
                    server.port(),
                    router.ring().backends().size());
        std::fflush(stdout);
        PM_LOG_INFO("cluster.router", "listening",
                    {{"bind", server_options.bindAddress},
                     {"port", std::to_string(server.port())},
                     {"backends",
                      std::to_string(
                          router.ring().backends().size())}});
        if (!port_file.empty()) {
            FILE *f = std::fopen(port_file.c_str(), "w");
            if (!f)
                fatal("cannot write port file \"" + port_file +
                      "\"");
            std::fprintf(f, "%u\n", server.port());
            std::fclose(f);
        }

        // Drain-then-shutdown on SIGINT/SIGTERM, same discipline
        // as parchmintd: the handler flips a flag, the signals
        // stay blocked outside sigsuspend() so a delivery cannot
        // slip between the check and the wait.
        struct sigaction action{};
        action.sa_handler = onSignal;
        sigemptyset(&action.sa_mask);
        sigaction(SIGINT, &action, nullptr);
        sigaction(SIGTERM, &action, nullptr);
        sigset_t block, unblocked;
        sigemptyset(&block);
        sigaddset(&block, SIGINT);
        sigaddset(&block, SIGTERM);
        sigprocmask(SIG_BLOCK, &block, &unblocked);
        while (!g_stop)
            sigsuspend(&unblocked);
        sigprocmask(SIG_SETMASK, &unblocked, nullptr);

        std::printf("parchmint_router draining (%llu connections "
                    "served)\n",
                    static_cast<unsigned long long>(
                        server.connectionsAccepted()));
        router.stopProbing();
        server.stop();

        cluster::CoalesceStats coalesce =
            router.coalescer().stats();
        cluster::PoolStats pool = router.pool().stats();
        std::printf(
            "router: %llu flights led, %llu coalesced; pool %llu "
            "reused / %llu created\n",
            static_cast<unsigned long long>(coalesce.leaders),
            static_cast<unsigned long long>(coalesce.followers),
            static_cast<unsigned long long>(pool.reused),
            static_cast<unsigned long long>(pool.created));
        return 0;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
