/**
 * @file
 * The synthetic-suite factory from the command line: expand a
 * generator spec (src/gen/) into a content-addressed corpus
 * directory, inspect it, and integrity-check it.
 *
 * Run:  ./gen_suite generate --out DIR [--spec FILE]
 *           [--name N] [--family F] [--seed S] [--count C]
 *           [--min-components A] [--max-components B]
 *           [--max-fanout K] [--mint] [--jobs N]
 *           [--report report.json] [--history history.jsonl]
 *       ./gen_suite describe --corpus DIR
 *       ./gen_suite verify-integrity --corpus DIR
 *           [--regenerate] [--limit N]
 *
 * generate: expands the spec into DIR (see gen/corpus.hh for the
 * on-disk format). Knob flags override the --spec file; with no
 * --spec the knobs build the whole spec. Determinism guarantee:
 * the same spec and seed produce a byte-identical corpus directory
 * at any --jobs value.
 *
 * describe: prints the embedded spec, provenance and aggregate
 * shape of an existing corpus without loading any netlists.
 *
 * verify-integrity: checks every manifest entry's file exists and
 * matches its recorded size and content hash; --regenerate
 * additionally re-expands each entry from the embedded spec and
 * compares bytes (the strongest reproducibility check; --limit
 * bounds how many entries are re-expanded).
 *
 * Exit status: 0 on success, 1 on failures (including any
 * integrity problem), 2 on usage errors.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/table.hh"
#include "common/cli.hh"
#include "common/error.hh"
#include "common/strings.hh"
#include "gen/corpus.hh"
#include "gen/generator.hh"
#include "gen/spec.hh"
#include "json/parse.hh"
#include "json/write.hh"
#include "obs/clock.hh"
#include "obs/obs.hh"
#include "obs/report_cli.hh"

using namespace parchmint;

namespace
{

int
runGenerate(int argc, char **argv)
{
    gen::GenSpec spec;
    bool have_spec_file = false;
    std::string out_dir;
    gen::WriteCorpusOptions write_options;
    obs::ReportCli report_cli;

    // The spec file parses first so knob flags can override it;
    // two passes keep flag order irrelevant.
    for (int i = 2; i < argc; ++i) {
        std::string value;
        if (cli::matchValueFlag(argc, argv, i, "--spec", value)) {
            spec = gen::parseGenSpec(json::parseFile(value));
            have_spec_file = true;
        }
    }
    for (int i = 2; i < argc; ++i) {
        if (report_cli.consume(argc, argv, i))
            continue;
        std::string arg = argv[i];
        std::string value;
        if (cli::matchValueFlag(argc, argv, i, "--spec", value)) {
            continue; // First pass consumed it.
        } else if (cli::matchValueFlag(argc, argv, i, "--out",
                                       value)) {
            out_dir = value;
        } else if (cli::matchValueFlag(argc, argv, i, "--name",
                                       value)) {
            spec.name = value;
        } else if (cli::matchValueFlag(argc, argv, i, "--family",
                                       value)) {
            spec.family = gen::parseFamilyName(value);
        } else if (cli::matchValueFlag(argc, argv, i, "--seed",
                                       value)) {
            spec.seed = cli::parseSeed(value, argv[0]);
        } else if (cli::matchValueFlag(argc, argv, i, "--count",
                                       value)) {
            spec.count = static_cast<size_t>(
                cli::parseUint64(value, "--count", argv[0]));
        } else if (cli::matchValueFlag(argc, argv, i,
                                       "--min-components", value)) {
            spec.minComponents = static_cast<size_t>(cli::parseUint64(
                value, "--min-components", argv[0]));
        } else if (cli::matchValueFlag(argc, argv, i,
                                       "--max-components", value)) {
            spec.maxComponents = static_cast<size_t>(cli::parseUint64(
                value, "--max-components", argv[0]));
        } else if (cli::matchValueFlag(argc, argv, i,
                                       "--max-fanout", value)) {
            spec.maxFanout = static_cast<size_t>(cli::parseUint64(
                value, "--max-fanout", argv[0]));
        } else if (arg == "--mint") {
            spec.emitMint = true;
        } else if (cli::matchValueFlag(argc, argv, i, "--jobs",
                                       value)) {
            write_options.jobs = static_cast<size_t>(
                cli::parseUint64(value, "--jobs", argv[0]));
        } else {
            cli::usageError(argv[0],
                            "unknown flag \"" + arg + "\"");
        }
    }
    if (out_dir.empty())
        cli::usageError(argv[0], "generate requires --out DIR");
    // Round-trip through the canonical form so CLI-built specs
    // obey exactly the same limits as file- and service-supplied
    // ones.
    spec = gen::parseGenSpec(gen::specToJson(spec));
    (void)have_spec_file;
    report_cli.enableIfRequested();

    obs::Stopwatch wall;
    gen::WriteCorpusResult result =
        gen::writeCorpus(out_dir, spec, write_options);
    double wall_ms = static_cast<double>(wall.elapsedUs()) / 1000.0;
    double throughput =
        wall_ms > 0.0 ? 1000.0 *
                            static_cast<double>(
                                result.manifest.entries.size()) /
                            wall_ms
                      : 0.0;
    std::printf("%s: %zu netlists (%zu files, %zu deduplicated), "
                "%.1f KiB, %.1f ms, %.1f netlists/s\n",
                out_dir.c_str(), result.manifest.entries.size(),
                result.filesWritten, result.deduplicated,
                static_cast<double>(result.netlistBytes) / 1024.0,
                wall_ms, throughput);

    if (report_cli.requested()) {
        obs::Registry &registry = obs::registry();
        registry.add("gen.write.netlists",
                     result.manifest.entries.size());
        registry.add("gen.write.files", result.filesWritten);
        registry.add("gen.write.deduplicated", result.deduplicated);
        registry.add("gen.write.bytes", result.netlistBytes);
        registry.setGauge("gen.write.throughput", throughput);
    }
    report_cli.finish(
        "gen_suite",
        {{"family", gen::familyName(spec.family)},
         {"seed", std::to_string(spec.seed)},
         {"count", std::to_string(spec.count)},
         {"jobs", std::to_string(write_options.jobs)}});
    return 0;
}

int
runDescribe(int argc, char **argv)
{
    std::string dir;
    for (int i = 2; i < argc; ++i) {
        std::string value;
        if (cli::matchValueFlag(argc, argv, i, "--corpus", value))
            dir = value;
        else
            cli::usageError(argv[0], std::string("unknown flag \"") +
                                         argv[i] + "\"");
    }
    if (dir.empty())
        cli::usageError(argv[0], "describe requires --corpus DIR");

    gen::CorpusManifest manifest = gen::readCorpusManifest(dir);
    std::printf("spec:\n%s\n",
                json::write(gen::specToJson(manifest.spec)).c_str());
    std::printf("manifest_version: %s\n",
                manifest.manifestVersion.c_str());

    uint64_t bytes = 0;
    size_t min_components = 0;
    size_t max_components = 0;
    uint64_t total_components = 0;
    uint64_t total_connections = 0;
    for (const gen::CorpusEntry &entry : manifest.entries) {
        bytes += entry.bytes;
        total_components += entry.components;
        total_connections += entry.connections;
        if (min_components == 0 ||
            entry.components < min_components)
            min_components = entry.components;
        max_components = std::max(max_components, entry.components);
    }
    size_t count = manifest.entries.size();
    std::printf("entries: %zu, %.1f KiB total\n", count,
                static_cast<double>(bytes) / 1024.0);
    if (count > 0) {
        std::printf("components: %zu..%zu (mean %.1f), "
                    "connections: mean %.1f\n",
                    min_components, max_components,
                    static_cast<double>(total_components) /
                        static_cast<double>(count),
                    static_cast<double>(total_connections) /
                        static_cast<double>(count));
    }

    analysis::TextTable table;
    table.beginRow();
    table.cell(std::string("index"));
    table.cell(std::string("name"));
    table.cell(std::string("file"));
    table.cell(std::string("comps"));
    table.cell(std::string("conns"));
    size_t shown = std::min<size_t>(count, 5);
    for (size_t i = 0; i < shown; ++i) {
        const gen::CorpusEntry &entry = manifest.entries[i];
        table.beginRow();
        table.cell(static_cast<int64_t>(entry.index));
        table.cell(entry.name);
        table.cell(entry.file);
        table.cell(static_cast<int64_t>(entry.components));
        table.cell(static_cast<int64_t>(entry.connections));
    }
    std::printf("%s", table.render().c_str());
    if (count > shown)
        std::printf("... %zu more\n", count - shown);
    return 0;
}

int
runVerify(int argc, char **argv)
{
    std::string dir;
    bool regenerate = false;
    size_t limit = 0;
    for (int i = 2; i < argc; ++i) {
        std::string value;
        if (cli::matchValueFlag(argc, argv, i, "--corpus", value)) {
            dir = value;
        } else if (std::string(argv[i]) == "--regenerate") {
            regenerate = true;
        } else if (cli::matchValueFlag(argc, argv, i, "--limit",
                                       value)) {
            limit = static_cast<size_t>(
                cli::parseUint64(value, "--limit", argv[0]));
        } else {
            cli::usageError(argv[0], std::string("unknown flag \"") +
                                         argv[i] + "\"");
        }
    }
    if (dir.empty())
        cli::usageError(argv[0],
                        "verify-integrity requires --corpus DIR");

    gen::VerifyCorpusResult result = gen::verifyCorpus(dir);
    for (const std::string &problem : result.problems)
        std::fprintf(stderr, "problem: %s\n", problem.c_str());

    size_t regen_mismatches = 0;
    size_t regen_checked = 0;
    if (regenerate) {
        gen::CorpusManifest manifest = gen::readCorpusManifest(dir);
        for (const gen::CorpusEntry &entry : manifest.entries) {
            if (limit != 0 && regen_checked >= limit)
                break;
            ++regen_checked;
            std::string text = gen::generateNetlistText(
                manifest.spec, entry.index);
            if (gen::corpusHashHex(gen::corpusHash(text)) !=
                entry.hash) {
                ++regen_mismatches;
                std::fprintf(stderr,
                             "problem: %s: regeneration does not "
                             "reproduce the recorded bytes\n",
                             entry.name.c_str());
            }
        }
    }

    std::printf("%zu entries checked: %zu missing, %zu corrupt",
                result.checked, result.missing, result.corrupt);
    if (regenerate)
        std::printf("; %zu regenerated, %zu mismatched",
                    regen_checked, regen_mismatches);
    std::printf("\n");
    return result.ok() && regen_mismatches == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 2) {
            cli::usageError(argv[0],
                            "expected a subcommand: generate, "
                            "describe or verify-integrity");
        }
        std::string command = argv[1];
        if (command == "generate")
            return runGenerate(argc, argv);
        if (command == "describe")
            return runDescribe(argc, argv);
        if (command == "verify-integrity")
            return runVerify(argc, argv);
        cli::usageError(argv[0], "unknown subcommand \"" + command +
                                     "\" (expected generate, "
                                     "describe or "
                                     "verify-integrity)");
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
