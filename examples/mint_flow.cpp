/**
 * @file
 * MINT authoring flow: compile a MINT program into a ParchMint
 * netlist, validate it, and emit both the JSON interchange file and
 * a Graphviz view of the connectivity.
 *
 * Run:  ./mint_flow [input.mint]
 *
 * Without an argument, a built-in gradient-mixer program is
 * compiled, so the example is runnable out of the box.
 */

#include <cstdio>
#include <string>

#include "common/cli.hh"
#include "common/error.hh"
#include "core/serialize.hh"
#include "export/dot.hh"
#include "mint/elaborate.hh"
#include "mint/write_mint.hh"
#include "schema/rules.hh"

using namespace parchmint;

namespace
{

const char *demo_program = R"(
# Two-reagent gradient mixer authored in MINT.
DEVICE mint_gradient

LAYER FLOW
    PORT inA, inB portRadius=700;
    MIXER stage1a, stage1b numberOfBends=5;
    MIXER stage2;
    PORT outLow, outMid, outHigh;

    CHANNEL c1 from inA to stage1a 1 channelWidth=400;
    CHANNEL c2 from inA to stage2 1 channelWidth=400;
    CHANNEL c3 from inB to stage1b 1 channelWidth=400;
    CHANNEL c4 from inB to stage2 1 channelWidth=400;
    CHANNEL c5 from stage1a 2 to outLow channelWidth=400;
    CHANNEL c6 from stage2 2 to outMid channelWidth=400;
    CHANNEL c7 from stage1b 2 to outHigh channelWidth=400;
END LAYER
)";

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc > 1 &&
            std::string_view(argv[1]).substr(0, 2) == "--") {
            cli::usageError(argv[0],
                            std::string("unknown flag \"") +
                                argv[1] + "\"",
                            "usage: mint_flow [program.mint]");
        }
        Device device = argc > 1
                            ? mint::compileMintFile(argv[1])
                            : mint::compileMint(demo_program);

        auto issues = schema::validateDocument(toJson(device));
        if (schema::hasErrors(issues)) {
            std::fprintf(stderr, "validation failed:\n%s",
                         schema::formatIssues(issues).c_str());
            return 1;
        }

        std::string base = device.name();
        saveDevice(base + ".json", device);
        exporter::writeDot(base + ".dot", device);
        std::printf("compiled \"%s\": %zu components, "
                    "%zu connections\n",
                    device.name().c_str(),
                    device.components().size(),
                    device.connections().size());

        // Close the loop: render the netlist back to canonical MINT.
        mint::RenderResult rendered = mint::renderMint(device);
        std::FILE *mint_out =
            std::fopen((base + "_canonical.mint").c_str(), "w");
        if (mint_out) {
            std::fputs(rendered.text.c_str(), mint_out);
            std::fclose(mint_out);
        }
        std::printf("wrote %s.json, %s.dot and %s_canonical.mint "
                    "(%s)\n",
                    base.c_str(), base.c_str(), base.c_str(),
                    rendered.lossless() ? "lossless"
                                        : "with reported losses");
        return 0;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
