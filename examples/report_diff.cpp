/**
 * @file
 * Diff two run reports (or history records) and gate on
 * regressions — the CI perf-gate front end of obs/compare.hh.
 *
 * Run:  ./report_diff [options] baseline.json current.json
 *       ./report_diff [options] --baseline a1.json
 *           [--baseline a2.json ...] --current b1.json
 *           [--current b2.json ...]
 *
 * With repeated --baseline / --current files, each side is reduced
 * to its per-metric median first (median-of-repeats), which is how
 * noisy timing metrics become gateable.
 *
 * Every rendering ends with a provenance line comparing the two
 * sides' env_id and manifest_version stamps (obs/env.hh, obs/
 * manifest.hh): a diff across different environments or problem
 * definitions is annotated, never silent. Legacy records without
 * the stamps are called out as such.
 *
 * Options:
 *   --threshold <pct>     relative noise threshold in percent
 *                         (default 5)
 *   --format <fmt>        table | markdown | json (default table)
 *   --watch <prefix>      gate only metrics matching the prefix
 *                         ("counter:", "route.astar", ...);
 *                         repeatable; default gates everything
 *   --all                 also print rows classified as noise
 *   --require-same-env    refuse to diff runs whose env_ids both
 *                         exist and differ (exit 2)
 *
 * Exit status: 0 when no watched metric regressed, 1 when one did
 * (the CI gate), 2 on usage or input errors — including an env_id
 * mismatch under --require-same-env.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hh"
#include "json/parse.hh"
#include "json/write.hh"
#include "obs/compare.hh"

using namespace parchmint;

namespace
{

/**
 * Load and flatten one side, median-merging repeats. The side's
 * provenance lands in @p provenance: the common stamp when every
 * repeat agrees, "mixed" when repeats disagree (which is itself a
 * provenance problem worth surfacing).
 */
obs::FlatMetrics
loadSide(const std::vector<std::string> &paths,
         obs::Provenance &provenance)
{
    std::vector<obs::FlatMetrics> flats;
    bool first = true;
    for (const std::string &path : paths) {
        json::Value report = json::parseFile(path);
        const json::Value *schema =
            report.isObject() ? report.find("schema") : nullptr;
        if (!schema || !schema->isString() ||
            (schema->asString() != "parchmint-run-report-v1" &&
             schema->asString() != "parchmint-run-report-v2" &&
             schema->asString() != "parchmint-run-history-v1" &&
             schema->asString() != "parchmint-run-history-v2")) {
            std::fprintf(stderr,
                         "warning: %s does not declare a known "
                         "run-report schema\n",
                         path.c_str());
        }
        obs::Provenance one = obs::extractProvenance(report);
        if (first) {
            provenance = one;
            first = false;
        } else {
            if (provenance.envId != one.envId)
                provenance.envId = "mixed";
            if (provenance.manifestVersion != one.manifestVersion)
                provenance.manifestVersion = "mixed";
        }
        flats.push_back(obs::flattenReport(report));
    }
    return flats.size() == 1 ? flats.front()
                             : obs::medianOfFlats(flats);
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: report_diff [options] baseline.json current.json\n"
        "       (or repeated --baseline/--current for medians)\n"
        "options: --threshold <pct>  --format table|markdown|json\n"
        "         --watch <prefix>   --all  --require-same-env\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        std::vector<std::string> baselines;
        std::vector<std::string> currents;
        std::vector<std::string> positional;
        std::vector<std::string> watch;
        std::string format = "table";
        double threshold_pct = 5.0;
        bool include_noise = false;
        bool require_same_env = false;

        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto value = [&]() -> std::string {
                if (i + 1 >= argc)
                    usage();
                return argv[++i];
            };
            if (arg == "--baseline") {
                baselines.push_back(value());
            } else if (arg == "--current") {
                currents.push_back(value());
            } else if (arg == "--watch") {
                watch.push_back(value());
            } else if (arg == "--format") {
                format = value();
            } else if (arg == "--threshold") {
                threshold_pct = std::atof(value().c_str());
            } else if (arg == "--all") {
                include_noise = true;
            } else if (arg == "--require-same-env") {
                require_same_env = true;
            } else if (arg == "--help" || arg == "-h") {
                usage();
            } else {
                positional.push_back(arg);
            }
        }
        if (positional.size() == 2 && baselines.empty() &&
            currents.empty()) {
            baselines.push_back(positional[0]);
            currents.push_back(positional[1]);
        } else if (!positional.empty() || baselines.empty() ||
                   currents.empty()) {
            usage();
        }
        if (format != "table" && format != "markdown" &&
            format != "json") {
            usage();
        }

        obs::CompareOptions options;
        options.relativeThreshold = threshold_pct / 100.0;
        obs::Provenance baseline_provenance;
        obs::Provenance current_provenance;
        obs::FlatMetrics baseline =
            loadSide(baselines, baseline_provenance);
        obs::FlatMetrics current =
            loadSide(currents, current_provenance);
        obs::Comparison comparison =
            obs::compareFlat(baseline, current, options);
        comparison.provenanceChecked = true;
        comparison.baselineProvenance = baseline_provenance;
        comparison.currentProvenance = current_provenance;

        if (require_same_env && comparison.envMismatch()) {
            std::fprintf(
                stderr,
                "error: env_id mismatch (baseline %s, current "
                "%s); runs come from different environments\n",
                baseline_provenance.envId.c_str(),
                current_provenance.envId.c_str());
            return 2;
        }

        if (format == "json") {
            std::printf(
                "%s",
                json::write(obs::comparisonToJson(comparison))
                    .c_str());
        } else if (format == "markdown") {
            std::printf("%s",
                        obs::renderComparisonMarkdown(
                            comparison, include_noise)
                            .c_str());
        } else {
            std::printf("%s",
                        obs::renderComparisonTable(comparison,
                                                   include_noise)
                            .c_str());
        }

        return obs::hasWatchedRegression(comparison, watch) ? 1
                                                            : 0;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
    }
}
