/**
 * @file
 * Parallel suite sweep from the command line: run the full place +
 * route + validate + simulate pipeline over the benchmark suite on
 * the execution engine (src/exec/), with per-stage deadlines and
 * fault containment, and print a suite-level summary table.
 *
 * Run:  ./suite_run [benchmark...] [--jobs N] [--deadline-ms M]
 *           [--seed S] [--no-sim] [--out DIR]
 *           [--corpus DIR] [--limit N] [--window N]
 *           [--report report.json] [--history history.jsonl]
 *
 * With no positional arguments the sweep covers the whole standard
 * suite. `--jobs 0` means "one worker per hardware thread".
 *
 * With --corpus the sweep runs over a generated corpus directory
 * (gen_suite generate) instead of the standard suite, streaming
 * it through the same pipeline in bounded-memory windows
 * (src/gen/corpus_run.hh): at most --window netlists (default 4x
 * jobs) are resident at once, so 10,000-netlist corpora sweep in
 * constant memory. --limit stops after N entries; only aggregate
 * counters are printed. Positional benchmark names and --out are
 * incompatible with --corpus.
 * Determinism guarantee: for a pinned --seed, the routed netlists
 * are byte-identical for every --jobs value, because each
 * benchmark's RNG stream is derived from the seed and its netlist
 * name, never from scheduling order. A benchmark whose stage
 * throws, or whose pipeline overruns --deadline-ms (measured from
 * its first stage, checked at stage boundaries), is reported as
 * failed/deadline and the rest of the suite completes.
 *
 * With --report, observability is enabled and the merged run
 * report carries every worker's spans on its own chrome://tracing
 * lane plus the exec.* counters; `<report>.folded` is the merged
 * flamegraph export. --history appends the compact summary record
 * (obs/history.hh) so repeated sweeps accumulate into a perf
 * trajectory (`report_diff` compares them).
 *
 * Exit status: 0 when every benchmark passed, 1 otherwise.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/table.hh"
#include "common/cli.hh"
#include "common/error.hh"
#include "common/strings.hh"
#include "exec/suite_runner.hh"
#include "gen/corpus_run.hh"
#include "obs/obs.hh"
#include "obs/report_cli.hh"

using namespace parchmint;

namespace
{

/** The --corpus mode: stream a generated corpus through the
 * pipeline and print the aggregate summary. */
int
runCorpusSweep(const std::string &corpus_dir,
               const gen::CorpusRunOptions &options,
               obs::ReportCli &report_cli)
{
    gen::CorpusRunSummary summary =
        gen::runCorpus(corpus_dir, options);

    for (const std::string &warning : summary.warnings)
        std::fprintf(stderr, "warning: %s\n", warning.c_str());
    for (const std::string &failure : summary.failures)
        std::fprintf(stderr, "failed: %s\n", failure.c_str());

    double wall_ms = static_cast<double>(summary.wallUs) / 1000.0;
    double throughput =
        wall_ms > 0.0 ? 1000.0 *
                            static_cast<double>(summary.entries) /
                            wall_ms
                      : 0.0;
    std::printf("%zu/%zu corpus netlists ok (%zu skipped), "
                "%zu worker(s), window %zu, %.1f ms wall, "
                "%.2f netlists/s\n",
                summary.okCount, summary.entries, summary.skipped,
                summary.workers, summary.peakWindow, wall_ms,
                throughput);
    std::printf("aggregate: %llu components, %llu connections, "
                "%llu/%llu nets routed, %llu violations, "
                "%llu rule errors\n",
                static_cast<unsigned long long>(summary.components),
                static_cast<unsigned long long>(
                    summary.connections),
                static_cast<unsigned long long>(summary.routedNets),
                static_cast<unsigned long long>(summary.totalNets),
                static_cast<unsigned long long>(
                    summary.routeViolations),
                static_cast<unsigned long long>(
                    summary.issueErrors));

    if (report_cli.requested()) {
        obs::registry().setGauge("exec.sweep.throughput",
                                 throughput);
    }
    report_cli.finish(
        "suite_run",
        {{"jobs", std::to_string(summary.workers)},
         {"seed", std::to_string(options.seed)},
         {"corpus", std::to_string(summary.entries)}});
    return summary.failedCount == 0 && summary.skipped == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        exec::SuiteRunOptions options;
        options.jobs = 1;
        std::string corpus_dir;
        size_t corpus_limit = 0;
        size_t corpus_window = 0;
        obs::ReportCli report_cli;

        for (int i = 1; i < argc; ++i) {
            if (report_cli.consume(argc, argv, i))
                continue;
            std::string arg = argv[i];
            std::string value;
            if (cli::matchValueFlag(argc, argv, i, "--jobs",
                                    value)) {
                options.jobs = static_cast<size_t>(
                    cli::parseUint64(value, "--jobs", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--deadline-ms",
                                           value)) {
                options.deadline = std::chrono::milliseconds(
                    static_cast<int64_t>(cli::parseUint64(
                        value, "--deadline-ms", argv[0])));
            } else if (cli::matchValueFlag(argc, argv, i, "--seed",
                                           value)) {
                options.seed = cli::parseSeed(value, argv[0]);
            } else if (cli::matchValueFlag(argc, argv, i, "--out",
                                           value)) {
                options.outDir = value;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--corpus", value)) {
                corpus_dir = value;
            } else if (cli::matchValueFlag(argc, argv, i, "--limit",
                                           value)) {
                corpus_limit = static_cast<size_t>(
                    cli::parseUint64(value, "--limit", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--window", value)) {
                corpus_window = static_cast<size_t>(
                    cli::parseUint64(value, "--window", argv[0]));
            } else if (arg == "--no-sim") {
                options.simulate = false;
            } else if (startsWith(arg, "--")) {
                cli::usageError(argv[0],
                                "unknown flag \"" + arg + "\"");
            } else {
                options.benchmarks.push_back(arg);
            }
        }
        if (corpus_dir.empty() &&
            (corpus_limit != 0 || corpus_window != 0)) {
            cli::usageError(
                argv[0], "--limit/--window require --corpus DIR");
        }
        if (!corpus_dir.empty() &&
            (!options.benchmarks.empty() ||
             !options.outDir.empty())) {
            cli::usageError(argv[0],
                            "--corpus is incompatible with "
                            "benchmark names and --out");
        }
        report_cli.enableIfRequested();

        if (!corpus_dir.empty()) {
            gen::CorpusRunOptions corpus_options;
            corpus_options.jobs = options.jobs;
            corpus_options.seed = options.seed;
            corpus_options.simulate = options.simulate;
            corpus_options.limit = corpus_limit;
            corpus_options.window = corpus_window;
            corpus_options.deadline = options.deadline;
            return runCorpusSweep(corpus_dir, corpus_options,
                                  report_cli);
        }

        exec::SuiteRunSummary summary = exec::runSuite(options);

        analysis::TextTable table;
        table.beginRow();
        table.cell(std::string("benchmark"));
        table.cell(std::string("status"));
        table.cell(std::string("ms"));
        table.cell(std::string("hpwl"));
        table.cell(std::string("routed"));
        table.cell(std::string("viol"));
        table.cell(std::string("issues"));
        table.cell(std::string("sim"));
        for (const exec::SuiteJobResult &job : summary.jobs) {
            // The first non-ok stage names the outcome.
            std::string status = "ok";
            std::string why;
            for (const exec::TaskResult *stage :
                 {&job.build, &job.place, &job.route,
                  &job.validate, &job.sim}) {
                if (!stage->ok()) {
                    status = exec::taskStatusName(stage->status);
                    why = stage->reason;
                    break;
                }
            }
            if (status == "ok" && job.issueErrors > 0)
                status = "invalid";
            table.beginRow();
            table.cell(job.benchmark);
            table.cell(status);
            table.cell(static_cast<double>(job.totalUs()) / 1000.0,
                       1);
            table.cell(job.hpwl);
            table.cell(std::to_string(job.routedNets) + "/" +
                       std::to_string(job.totalNets));
            table.cell(job.routeViolations);
            table.cell(std::to_string(job.issueErrors) + "E/" +
                       std::to_string(job.issueWarnings) + "W");
            table.cell(job.simSolved
                           ? std::string("solved")
                           : (job.simNote.empty() ? "-"
                                                  : "skipped"));
            if (!why.empty()) {
                std::fprintf(stderr, "%s: %s\n",
                             job.benchmark.c_str(), why.c_str());
            }
        }
        std::printf("%s\n", table.render().c_str());

        double wall_ms =
            static_cast<double>(summary.wallUs) / 1000.0;
        double throughput =
            wall_ms > 0.0 ? 1000.0 *
                                static_cast<double>(
                                    summary.jobs.size()) /
                                wall_ms
                          : 0.0;
        std::printf("%zu/%zu benchmarks ok, %zu worker(s), "
                    "%.1f ms wall, %.2f benchmarks/s\n",
                    summary.okCount(), summary.jobs.size(),
                    summary.workers, wall_ms, throughput);

        if (report_cli.requested()) {
            obs::registry().setGauge("exec.sweep.throughput",
                                     throughput);
        }
        report_cli.finish(
            "suite_run",
            {{"jobs", std::to_string(summary.workers)},
             {"seed", std::to_string(options.seed)},
             {"benchmarks", std::to_string(summary.jobs.size())}});
        return summary.okCount() == summary.jobs.size() ? 0 : 1;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
