/**
 * @file
 * Cross-version leaderboard over a JSONL run-history file — the
 * front end of obs/leaderboard.hh.
 *
 * Run:  ./leaderboard [options] history.jsonl [more.jsonl ...]
 *
 * Records are grouped by (problem, manifest_version, env_id) and
 * every metric gets a ranked board with manifest-declared better-
 * directions; runs from different environments or manifest
 * revisions never rank against each other. A chronological
 * regression-provenance section reports, for each metric that
 * moved in the worse direction, the first run — with its env and
 * manifest stamps — where it did, flagging movements that coincide
 * with an environment or manifest change as confounded.
 *
 * Output is a pure function of the input records: the same history
 * file renders byte-identically, so leaderboards are diffable CI
 * artifacts.
 *
 * Options:
 *   --format <fmt>     table | markdown | json (default table)
 *   --metric <prefix>  board only metrics matching the flat-key
 *                      prefix ("counter:place.", "gauge:");
 *                      repeatable; default uses the problem's
 *                      manifest-declared metric families
 *   --threshold <pct>  regression-provenance threshold in percent
 *                      (default 5)
 *
 * Exit status: 0 on success (regressions included — ranking is
 * reporting, not gating; gate with report_diff), 2 on usage or
 * input errors.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hh"
#include "json/write.hh"
#include "obs/history.hh"
#include "obs/leaderboard.hh"

using namespace parchmint;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: leaderboard [options] history.jsonl [...]\n"
        "options: --format table|markdown|json\n"
        "         --metric <prefix>  --threshold <pct>\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        std::vector<std::string> paths;
        std::string format = "table";
        obs::LeaderboardOptions options;

        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto value = [&]() -> std::string {
                if (i + 1 >= argc)
                    usage();
                return argv[++i];
            };
            if (arg == "--format") {
                format = value();
            } else if (arg == "--metric") {
                options.metrics.push_back(value());
            } else if (arg == "--threshold") {
                options.regressionThreshold =
                    std::atof(value().c_str()) / 100.0;
            } else if (arg == "--help" || arg == "-h") {
                usage();
            } else {
                paths.push_back(arg);
            }
        }
        if (paths.empty())
            usage();
        if (format != "table" && format != "markdown" &&
            format != "json") {
            usage();
        }

        std::vector<json::Value> records;
        for (const std::string &path : paths) {
            for (json::Value &record : obs::readHistory(path))
                records.push_back(std::move(record));
        }

        obs::Leaderboard board =
            obs::buildLeaderboard(records, options);

        if (format == "json") {
            std::printf(
                "%s\n",
                json::write(obs::leaderboardToJson(board))
                    .c_str());
        } else if (format == "markdown") {
            std::printf(
                "%s",
                obs::renderLeaderboardMarkdown(board).c_str());
        } else {
            std::printf(
                "%s", obs::renderLeaderboardTable(board).c_str());
        }
        return 0;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
    }
}
