/**
 * @file
 * parchmintd: the ParchMint netlist service daemon.
 *
 * Serves the pipeline over JSON/HTTP (see src/svc/service.hh for
 * the endpoint list) until SIGINT or SIGTERM, then drains: the
 * listener closes, in-flight requests finish and flush their
 * responses, and the worker pool joins before exit.
 *
 * Run:  ./parchmintd [--port P] [--bind ADDR] [--threads N]
 *           [--cache-mb M] [--max-inflight K] [--seed S]
 *           [--deadline-ms D] [--port-file PATH] [--corpus DIR]
 *           [--log-level debug|info|warn|error|off]
 *           [--log-json PATH|-] [--log-burst N] [--log-rate N]
 *           [--crash-file PATH] [--flight-events N]
 *           [--report report.json] [--history history.jsonl]
 *
 * `--port 0` (the default) binds a kernel-assigned ephemeral port;
 * `--port-file` writes the bound port to a file so scripts (and the
 * CI smoke test) can find the server without racing the log.
 * `--cache-mb 0` disables the content-addressed caches;
 * `--max-inflight 0` means "two heavy requests per hardware
 * thread". `--corpus DIR` mounts a generated corpus directory
 * (gen_suite generate) under GET /v1/corpus — the manifest is
 * validated up front, netlists are read from disk per request. With --report / --history the run-report artifacts are
 * written on shutdown, carrying the per-endpoint latency
 * histograms and the request/cache counters.
 *
 * Live observability: `--log-json -` streams structured JSONL log
 * lines to stderr (`--log-json PATH` appends to a file) at
 * `--log-level` (default info; logging is off without --log-json).
 * The flight recorder always runs (`--flight-events` resizes its
 * ring, default 2048) and is dumped to stderr — and to
 * `--crash-file PATH` when given — if the daemon dies on
 * SIGSEGV/SIGABRT. /tracez, /logz, and /profilez serve the live
 * views; see src/svc/service.hh.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cli.hh"
#include "common/error.hh"
#include "common/strings.hh"
#include "gen/corpus.hh"
#include "obs/flight.hh"
#include "obs/log.hh"
#include "obs/report_cli.hh"
#include "svc/server.hh"
#include "svc/service.hh"

using namespace parchmint;

namespace
{

/** Set by the signal handler; the main loop polls it. */
volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--port P] [--bind ADDR] [--threads N]\n"
        "          [--cache-mb M] [--max-inflight K] [--seed S]\n"
        "          [--deadline-ms D] [--port-file PATH]\n"
        "          [--corpus DIR]\n"
        "          [--log-level debug|info|warn|error|off]\n"
        "          [--log-json PATH|-] [--log-burst N]\n"
        "          [--log-rate N] [--crash-file PATH]\n"
        "          [--flight-events N]\n"
        "          [--report report.json] "
        "[--history history.jsonl]\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        svc::ServiceOptions service_options;
        svc::ServerOptions server_options;
        std::string port_file;
        std::string log_json;
        std::string crash_file;
        size_t flight_events = 2048;
        obs::LogLevel log_level = obs::LogLevel::Info;
        obs::LogRateLimit log_limit;
        obs::ReportCli report_cli;

        for (int i = 1; i < argc; ++i) {
            if (report_cli.consume(argc, argv, i))
                continue;
            std::string arg = argv[i];
            std::string value;
            if (cli::matchValueFlag(argc, argv, i, "--port",
                                    value)) {
                server_options.port = static_cast<uint16_t>(
                    cli::parseUint64(value, "--port", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i, "--bind",
                                           value)) {
                server_options.bindAddress = value;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--threads", value)) {
                server_options.threads = static_cast<size_t>(
                    cli::parseUint64(value, "--threads", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--cache-mb", value)) {
                service_options.cacheBytes =
                    static_cast<size_t>(cli::parseUint64(
                        value, "--cache-mb", argv[0])) *
                    1024 * 1024;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--max-inflight",
                                           value)) {
                service_options.maxInflight =
                    static_cast<size_t>(cli::parseUint64(
                        value, "--max-inflight", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i, "--seed",
                                           value)) {
                service_options.seed =
                    cli::parseSeed(value, argv[0]);
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--deadline-ms",
                                           value)) {
                service_options.requestDeadline =
                    std::chrono::milliseconds(
                        static_cast<int64_t>(cli::parseUint64(
                            value, "--deadline-ms", argv[0])));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--port-file", value)) {
                port_file = value;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--corpus", value)) {
                service_options.corpusDir = value;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--log-level", value)) {
                if (!obs::parseLogLevel(value, log_level))
                    cli::usageError(argv[0],
                                    "bad --log-level \"" + value +
                                        "\" (want debug|info|"
                                        "warn|error|off)");
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--log-json", value)) {
                log_json = value;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--log-burst",
                                           value)) {
                log_limit.burst =
                    std::strtod(value.c_str(), nullptr);
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--log-rate", value)) {
                log_limit.ratePerSecond =
                    std::strtod(value.c_str(), nullptr);
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--crash-file",
                                           value)) {
                crash_file = value;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--flight-events",
                                           value)) {
                flight_events = static_cast<size_t>(
                    cli::parseUint64(value, "--flight-events",
                                     argv[0]));
            } else {
                usage(argv[0]);
                cli::usageError(argv[0], "unknown argument \"" +
                                             arg + "\"");
            }
        }
        report_cli.enableIfRequested();
        server_options.limits.maxBodyBytes =
            service_options.maxBodyBytes;

        // Fail fast on an unreadable corpus: a daemon that would
        // 404 every /v1/corpus request should not start quietly.
        if (!service_options.corpusDir.empty()) {
            gen::CorpusManifest manifest = gen::readCorpusManifest(
                service_options.corpusDir);
            std::printf("parchmintd corpus: %zu netlists from "
                        "spec \"%s\"\n",
                        manifest.entries.size(),
                        manifest.spec.name.c_str());
        }

        // Observability plumbing before the first request: size
        // the flight ring, arm the crash handlers, attach the log
        // sink. Logging stays off unless --log-json asked for it.
        obs::flight::configure(flight_events);
        obs::flight::installCrashHandlers(crash_file);
        if (!log_json.empty()) {
            if (log_json == "-")
                obs::logger().setSink(stderr, log_level);
            else
                obs::logger().openSink(log_json, log_level);
            obs::logger().setRateLimit(log_limit);
        }

        svc::NetlistService service(service_options);
        svc::HttpServer server(service, server_options);
        server.start();
        std::printf("parchmintd listening on %s:%u\n",
                    server_options.bindAddress.c_str(),
                    server.port());
        std::fflush(stdout);
        PM_LOG_INFO(
            "svc.daemon", "listening",
            {{"bind", server_options.bindAddress},
             {"port", std::to_string(server.port())},
             {"seed",
              std::to_string(service_options.seed)}});
        if (!port_file.empty()) {
            FILE *f = std::fopen(port_file.c_str(), "w");
            if (!f)
                fatal("cannot write port file \"" + port_file +
                      "\"");
            std::fprintf(f, "%u\n", server.port());
            std::fclose(f);
        }

        // Drain-then-shutdown on SIGINT/SIGTERM: the handler only
        // flips a flag; this loop notices and stop() does the
        // orderly part. The signals stay blocked outside
        // sigsuspend() so a delivery cannot slip between the flag
        // check and the wait.
        struct sigaction action{};
        action.sa_handler = onSignal;
        sigemptyset(&action.sa_mask);
        sigaction(SIGINT, &action, nullptr);
        sigaction(SIGTERM, &action, nullptr);
        sigset_t block, unblocked;
        sigemptyset(&block);
        sigaddset(&block, SIGINT);
        sigaddset(&block, SIGTERM);
        sigprocmask(SIG_BLOCK, &block, &unblocked);
        while (!g_stop)
            sigsuspend(&unblocked);
        sigprocmask(SIG_SETMASK, &unblocked, nullptr);

        std::printf("parchmintd draining (%llu connections "
                    "served)\n",
                    static_cast<unsigned long long>(
                        server.connectionsAccepted()));
        PM_LOG_INFO("svc.daemon", "draining",
                    {{"connections",
                      std::to_string(
                          server.connectionsAccepted())}});
        server.stop();

        svc::CacheStats documents = service.documentCacheStats();
        svc::CacheStats results = service.resultCacheStats();
        std::printf(
            "cache: doc %llu/%llu hits, result %llu/%llu hits; "
            "admission: %llu admitted, %llu rejected\n",
            static_cast<unsigned long long>(documents.hits),
            static_cast<unsigned long long>(documents.hits +
                                            documents.misses),
            static_cast<unsigned long long>(results.hits),
            static_cast<unsigned long long>(results.hits +
                                            results.misses),
            static_cast<unsigned long long>(
                service.admission().admitted()),
            static_cast<unsigned long long>(
                service.admission().rejected()));

        report_cli.finish(
            "parchmintd",
            {{"seed", std::to_string(service_options.seed)},
             {"connections",
              std::to_string(server.connectionsAccepted())}});
        return 0;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
