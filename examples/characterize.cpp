/**
 * @file
 * Suite characterization from the command line: print the
 * benchmark characterization and composition tables, or validate a
 * ParchMint JSON file supplied as an argument.
 *
 * Run:  ./characterize                  (suite tables)
 *       ./characterize --json           (suite report as JSON)
 *       ./characterize netlist.json    (validate + characterize one
 *                                        file)
 *
 * Any form also accepts `--report <path>`: observability is enabled
 * and a run-report JSON artifact is written, carrying the
 * per-device characterization timings from the metrics registry
 * (the same code path that feeds the Table 1 numbers) and the
 * validation spans; a collapsed-stack flamegraph export lands next
 * to it at `<path>.folded`. `--history <path>` appends a compact
 * summary record to a JSONL history file (obs/history.hh). Both
 * flags accept the space-separated and the `=` spellings.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/error.hh"
#include "analysis/stats_json.hh"
#include "analysis/suite_report.hh"
#include "json/write.hh"
#include "core/deserialize.hh"
#include "core/serialize.hh"
#include "obs/report_cli.hh"
#include "schema/rules.hh"

using namespace parchmint;

namespace
{

int
characterizeFile(const std::string &path)
{
    Device device = loadDevice(path);
    auto issues = schema::validateDocument(toJson(device));
    std::printf("%s: %s\n", path.c_str(),
                schema::hasErrors(issues) ? "INVALID" : "valid");
    if (!issues.empty())
        std::printf("%s", schema::formatIssues(issues).c_str());

    analysis::NetlistStats stats =
        analysis::computeNetlistStats(device);
    std::printf("components: %zu  connections: %zu  valves: %zu  "
                "i/o: %zu\n",
                stats.componentCount, stats.connectionCount,
                stats.valveCount, stats.ioPortCount);
    std::printf("flow graph: density %.3f, max degree %zu, "
                "diameter %zu, %s, %s\n",
                stats.flowGraph.density, stats.flowGraph.maxDegree,
                stats.flowGraph.diameter,
                stats.flowGraph.planar ? "planar" : "non-planar",
                stats.flowGraph.connected ? "connected"
                                          : "disconnected");
    return schema::hasErrors(issues) ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        obs::ReportCli report_cli;
        std::vector<std::string> args;
        for (int i = 1; i < argc; ++i) {
            if (report_cli.consume(argc, argv, i))
                continue;
            args.push_back(argv[i]);
        }
        report_cli.enableIfRequested();

        for (const std::string &arg : args) {
            if (arg.rfind("--", 0) == 0 && arg != "--json") {
                cli::usageError(
                    argv[0], "unknown flag \"" + arg + "\"",
                    "usage: characterize [--json | netlist.json] "
                    "[--report F] [--history F]");
            }
        }
        int status = 0;
        if (!args.empty() && args[0] == "--json") {
            auto rows = analysis::characterizeSuite();
            std::printf(
                "%s",
                json::write(analysis::suiteReportToJson(rows))
                    .c_str());
        } else if (!args.empty()) {
            status = characterizeFile(args[0]);
        } else {
            auto rows = analysis::characterizeSuite();
            std::printf(
                "ParchMint standard suite characterization\n\n");
            std::printf(
                "%s\n",
                analysis::renderCharacterizationTable(rows).c_str());
            std::printf("Suite composition (entity instances)\n\n");
            std::printf(
                "%s",
                analysis::renderCompositionTable(rows).c_str());
        }

        report_cli.finish("characterize");
        return status;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
