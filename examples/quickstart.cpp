/**
 * @file
 * Quickstart: build a netlist with the fluent API, validate it, and
 * write it out as ParchMint JSON.
 *
 * Run:  ./quickstart [output.json]
 *
 * The device is a minimal sample-to-answer chip: two reagent inlets
 * behind valves, a serpentine mixer, a reaction chamber and an
 * outlet, with a pneumatic control layer driving the valves.
 */

#include <cstdio>
#include <string>

#include "core/builder.hh"
#include "core/serialize.hh"
#include "schema/rules.hh"

using namespace parchmint;

int
main(int argc, char **argv)
{
    // 1. Build the netlist. Layers first, then components, then
    //    channels; "component.port" strings name endpoints.
    DeviceBuilder builder("quickstart_chip");
    builder.flowLayer().controlLayer();

    builder.component("reagent_a", EntityKind::Port)
        .component("reagent_b", EntityKind::Port)
        .component("valve_a", EntityKind::Valve)
        .component("valve_b", EntityKind::Valve)
        .component("mixer", EntityKind::Mixer)
        .component("chamber", EntityKind::DiamondChamber)
        .component("outlet", EntityKind::Port);

    builder.channel("supply_a", "reagent_a.1", "valve_a.1")
        .channel("supply_b", "reagent_b.1", "valve_b.1")
        .channel("merge_a", "valve_a.2", "mixer.1")
        .channel("merge_b", "valve_b.2", "mixer.1")
        .channel("react", "mixer.2", "chamber.1")
        .channel("collect", "chamber.2", "outlet.1");

    // Pneumatic control lines for the two valves.
    const std::string control =
        builder.device().firstLayer(LayerType::Control)->id;
    for (const char *valve : {"valve_a", "valve_b"}) {
        std::string port_id = std::string(valve) + "_ctl";
        Component ctl(port_id, port_id, "PORT", 2000, 2000);
        ctl.addLayerId(control);
        ctl.addPort(Port{"1", control, 1000, 1000});
        builder.component(std::move(ctl));
        builder.controlChannel(std::string(valve) + "_cc",
                               port_id + ".1",
                               std::string(valve) + ".c1");
    }

    Device device = builder.build();

    // 2. Validate: structural schema + semantic rules.
    auto issues = schema::validateDocument(toJson(device));
    if (schema::hasErrors(issues)) {
        std::fprintf(stderr, "validation failed:\n%s",
                     schema::formatIssues(issues).c_str());
        return 1;
    }
    std::printf("device \"%s\": %zu components, %zu connections, "
                "validation clean (%zu warnings)\n",
                device.name().c_str(), device.components().size(),
                device.connections().size(), issues.size());

    // 3. Serialize to the interchange format.
    std::string path = argc > 1 ? argv[1] : "quickstart_chip.json";
    saveDevice(path, device);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
