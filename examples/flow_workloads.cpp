/**
 * @file
 * Cross-suite continuous-flow quality table from the command line:
 * place + route every standard-suite benchmark, then run the three
 * continuous-flow solvers (mixing, dilution synthesis, flow-path
 * scheduling) over the routed netlists and print one quality row
 * per benchmark.
 *
 * Run:  ./flow_workloads                 (text table)
 *       ./flow_workloads --json          (flow-quality report JSON)
 *       ./flow_workloads --seed 7        (different annealer seed)
 *
 * The table is deterministic per seed: the annealer derives its
 * stream from (seed, device name), and every solver downstream is
 * a pure function of the routed netlist.
 *
 * `--report <path>` / `--history <path>` behave as everywhere
 * else: observability on, run-report artifact + JSONL history
 * record carrying the solver metrics (sim.mix.*, sim.dilute.*,
 * sim.schedule.*).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/flow_quality.hh"
#include "common/cli.hh"
#include "common/error.hh"
#include "json/write.hh"
#include "obs/report_cli.hh"

using namespace parchmint;

int
main(int argc, char **argv)
{
    try {
        obs::ReportCli report_cli;
        uint64_t seed = 1;
        bool as_json = false;
        for (int i = 1; i < argc; ++i) {
            if (report_cli.consume(argc, argv, i))
                continue;
            std::string arg = argv[i];
            if (arg == "--json") {
                as_json = true;
            } else if (arg == "--seed" && i + 1 < argc) {
                seed = cli::parseSeed(argv[++i], argv[0]);
            } else if (arg.rfind("--seed=", 0) == 0) {
                seed = cli::parseSeed(
                    arg.substr(std::string("--seed=").size()),
                    argv[0]);
            } else {
                cli::usageError(
                    argv[0], "unknown argument \"" + arg + "\"",
                    "usage: flow_workloads [--json] [--seed N] "
                    "[--report F] [--history F]");
            }
        }
        report_cli.enableIfRequested();

        std::vector<analysis::FlowQualityRow> rows =
            analysis::computeFlowQuality(seed);
        if (as_json) {
            std::printf(
                "%s",
                json::write(
                    analysis::flowQualityToJson(rows, seed))
                    .c_str());
        } else {
            std::printf("Continuous-flow workload quality "
                        "(seed %llu)\n\n",
                        static_cast<unsigned long long>(seed));
            std::printf(
                "%s",
                analysis::renderFlowQualityTable(rows).c_str());
        }

        report_cli.finish("flow_workloads",
                          {{"seed", std::to_string(seed)}});
        return 0;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
