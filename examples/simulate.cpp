/**
 * @file
 * Hydraulic analysis flow: place and route a benchmark, then solve
 * the steady-state pressure/flow network of its flow layer using
 * the routed channel lengths.
 *
 * Run:  ./simulate [benchmark] [pressure_kpa]
 *
 * Defaults to the gradient generator at 20 kPa: inlets pressurized,
 * outlets at ambient; the flow profile across the five outlets is
 * the device's concentration-gradient driver.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cli.hh"
#include "common/error.hh"
#include "place/annealing_placer.hh"
#include "route/router.hh"
#include "sim/hydraulic.hh"
#include "suite/suite.hh"

using namespace parchmint;

int
main(int argc, char **argv)
{
    try {
        for (int i = 1; i < argc; ++i) {
            if (std::string_view(argv[i]).substr(0, 2) == "--") {
                cli::usageError(argv[0],
                                std::string("unknown flag \"") +
                                    argv[i] + "\"",
                                "usage: simulate [benchmark] "
                                "[pressure_kpa]");
            }
        }
        std::string name =
            argc > 1 ? argv[1] : "gradient_generator";
        double pressure_pa =
            (argc > 2 ? std::strtod(argv[2], nullptr) : 20.0) *
            1000.0;

        Device device = suite::buildBenchmark(name);

        // Physical design first: routed lengths feed the model.
        place::AnnealingOptions options;
        options.seed = 1;
        place::Placement placement =
            place::AnnealingPlacer(options).place(device);
        route::routeDevice(device, placement);

        sim::HydraulicModel model =
            sim::HydraulicModel::build(device);

        // Boundary conditions: pressurize input-ish ports (IDs
        // beginning with "in" or named inlet/supply/sample/buffer),
        // ground the rest of the I/O ports.
        size_t sources = 0;
        size_t drains = 0;
        for (const Component &component : device.components()) {
            if (component.entityKind() != EntityKind::Port)
                continue;
            const Layer *flow =
                device.firstLayer(LayerType::Flow);
            if (!component.onLayer(flow->id))
                continue; // Pneumatic control ports.
            const std::string &id = component.id();
            bool is_source = id.rfind("in", 0) == 0 ||
                             id.rfind("inlet", 0) == 0 ||
                             id.rfind("supply", 0) == 0 ||
                             id.rfind("sample", 0) == 0 ||
                             id.rfind("buffer", 0) == 0 ||
                             id.rfind("fill", 0) == 0 ||
                             id.rfind("elution", 0) == 0 ||
                             id.rfind("win", 0) == 0;
            model.setPressure(id, is_source ? pressure_pa : 0.0);
            ++(is_source ? sources : drains);
        }
        if (sources == 0 || drains == 0)
            fatal("benchmark has no obvious source/drain port "
                  "split; choose another");

        sim::HydraulicSolution solution = model.solve();

        std::printf("hydraulic solve of %s: %zu nodes, %zu "
                    "resistors, %zu sources at %.1f kPa, %zu "
                    "drains at 0\n",
                    name.c_str(), model.nodeCount(),
                    model.edges().size(), sources,
                    pressure_pa / 1000.0, drains);

        // Report per-drain outflow in nL/s.
        for (const Component &component : device.components()) {
            if (component.entityKind() != EntityKind::Port)
                continue;
            const std::string &id = component.id();
            double inflow = 0.0;
            try {
                inflow = solution.netInflow(id);
            } catch (const UserError &) {
                continue;
            }
            if (solution.floating().end() !=
                std::find(solution.floating().begin(),
                          solution.floating().end(), id)) {
                continue;
            }
            std::printf("  port %-12s net inflow %+9.3f nL/s\n",
                        id.c_str(), inflow * 1e12);
        }
        if (!solution.floating().empty()) {
            std::printf("floating components: %zu\n",
                        solution.floating().size());
        }
        return 0;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
