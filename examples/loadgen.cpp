/**
 * @file
 * loadgen: closed- and open-loop load generator for parchmintd and
 * the cluster router.
 *
 * Run:  ./loadgen --port P [--host ADDR] [--qps Q]
 *           [--connections C] [--duration-s S]
 *           [--endpoint /v1/validate] [--payloads N]
 *           [--corpus DIR] [--sample-seed S]
 *           [--statsz HOST:PORT ...]
 *           [--sweep Q1,Q2,...] [--closed-loop]
 *           [--sweep-connections C1,C2,...]
 *           [--sweep-json PATH]
 *           [--report report.json] [--history history.jsonl]
 *
 * --endpoint also accepts short names (validate, characterize,
 * place, route, mix, dilute, schedule), which map onto /v1/<name>.
 *
 * Modes:
 *
 *   open loop (default): each of the C connections is a thread
 *   with its own keep-alive HTTP client, paced at Q/C requests per
 *   second against its own schedule, skipping slots it cannot keep
 *   (no coordinated-omission backlog bursts). `--sweep` runs one
 *   such point per listed QPS value — the latency-vs-offered-load
 *   curve that finds a cluster's knee.
 *
 *   closed loop (`--closed-loop`): pacing off; every connection
 *   fires its next request the moment the previous response lands,
 *   so offered load is the concurrency itself.
 *   `--sweep-connections` (implies --closed-loop) runs one point
 *   per listed connection count.
 *
 * The request bodies are real suite netlists pulled from the
 * target's own /v1/suite registry at startup (N distinct payloads,
 * cycled), so the run exercises the full parse → pipeline → cache
 * path with representative documents and a repeat pattern the
 * content-addressed cache is expected to absorb. The dilute
 * endpoint takes concentration specs instead of netlists, so for
 * it loadgen synthesizes N deterministic spec payloads (distinct
 * targets, fixed tolerance) with the same cycling repeat pattern.
 * `--corpus DIR` swaps the payload source for a generated corpus
 * directory (read locally through the hash-verifying corpus
 * reader); `--sample-seed S` switches payload cycling to seeded
 * random sampling (per-connection deriveSeed streams, reproducible
 * at fixed C).
 *
 * Per point it compares the target's /statsz cache counters from
 * before and after, prints a latency summary (p50/p95/p99 from
 * obs::Histogram), and emits one greppable line:
 *
 *   loadgen: requests=N ok=N status_4xx=0 status_5xx=0
 *     transport_errors=0 throughput_rps=X p50_ms=X p95_ms=X
 *     p99_ms=X result_hit_rate=X.XX
 *
 * followed by the five slowest requests with the trace IDs the
 * server echoed in X-Parchmint-Trace (look them up at /tracez).
 *
 * Cluster runs: `--statsz HOST:PORT` (repeatable) names the
 * *backends* behind a router target. Per point, loadgen diffs each
 * backend's /statsz — result-cache hit rate and 5xx response
 * counters — and prints one line per backend:
 *
 *   loadgen: backend[HOST:PORT] result_hit_rate=X.XX
 *     delta_hits=N delta_misses=N status_5xx_delta=0
 *
 * A nonzero 5xx delta on *any* backend fails the run (exit 1) even
 * when the router shielded clients from it — the cluster is
 * supposed to be error-free end to end.
 *
 * `--sweep-json PATH` writes the whole run as JSON (schema
 * parchmint-loadgen-sweep-v1): one entry per point with offered
 * load, achieved throughput, latency percentiles, and error
 * counts. The cluster benchmark's latency-vs-offered-load curves
 * come from here.
 *
 * Exit status is 1 when any 5xx, transport error, or backend 5xx
 * delta occurred (429s are counted but are not failures —
 * rejecting work under overload is the server behaving as
 * designed).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cluster/pool.hh"
#include "common/cli.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "gen/corpus.hh"
#include "json/parse.hh"
#include "json/value.hh"
#include "json/write.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/report_cli.hh"
#include "svc/client.hh"

using namespace parchmint;

namespace
{

/** What one connection thread tallies. */
struct WorkerTally
{
    std::vector<double> latencyMs;
    /** Trace ID echoed by the server per request, aligned with
     * latencyMs so the slowest requests can be named. */
    std::vector<std::string> traceIds;
    uint64_t ok = 0;
    uint64_t status4xx = 0;
    uint64_t status5xx = 0;
    uint64_t transportErrors = 0;
};

/** Counters pulled out of one /statsz body. */
struct StatszCounters
{
    /** Result-cache hits/misses (zero when the target exposes no
     * cache — the router's /statsz has none). */
    int64_t hits = 0;
    int64_t misses = 0;
    /** Sum of svc.responses.5xx / router.responses.5xx counters. */
    int64_t responses5xx = 0;
};

StatszCounters
parseStatsz(const std::string &statszBody)
{
    StatszCounters counters;
    json::Value document = json::parse(statszBody);
    if (!document.isObject())
        return counters;
    if (const json::Value *cache = document.find("cache")) {
        if (const json::Value *result = cache->find("result")) {
            counters.hits = result->at("hits").asInteger();
            counters.misses = result->at("misses").asInteger();
        }
    }
    if (const json::Value *metrics = document.find("metrics")) {
        if (const json::Value *names =
                metrics->find("counters")) {
            for (const json::Value::Member &member :
                 names->members()) {
                if ((startsWith(member.first,
                                "svc.responses.5") ||
                     startsWith(member.first,
                                "router.responses.5")))
                    counters.responses5xx +=
                        member.second.asInteger();
            }
        }
    }
    return counters;
}

/** One offered-load point of a run. */
struct PointSpec
{
    double qps = 0.0;
    size_t connections = 1;
    bool closedLoop = false;
};

/** What one point measured. */
struct PointOutcome
{
    PointSpec spec;
    uint64_t requests = 0;
    uint64_t ok = 0;
    uint64_t status4xx = 0;
    uint64_t status5xx = 0;
    uint64_t transportErrors = 0;
    double elapsedS = 0.0;
    double throughputRps = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double hitRate = 0.0;
};

/** Parse a comma-separated list of positive numbers. */
std::vector<double>
parseNumberList(const std::string &text, const char *flag,
                const char *argv0)
{
    std::vector<double> values;
    for (const std::string &item : split(text, ',')) {
        std::string trimmed = trim(item);
        if (trimmed.empty())
            continue;
        char *end = nullptr;
        double value = std::strtod(trimmed.c_str(), &end);
        if (end == trimmed.c_str() || *end != '\0' ||
            value <= 0.0)
            cli::usageError(argv0,
                            std::string("bad ") + flag +
                                " entry \"" + trimmed + "\"");
        values.push_back(value);
    }
    if (values.empty())
        cli::usageError(argv0, std::string(flag) +
                                   " needs at least one value");
    return values;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        std::string host = "127.0.0.1";
        uint16_t port = 0;
        double qps = 100.0;
        size_t connections = 4;
        double duration_s = 5.0;
        std::string endpoint = "/v1/validate";
        size_t payload_count = 4;
        std::string corpus_dir;
        bool seeded_sampling = false;
        uint64_t sample_seed = 0;
        std::vector<std::string> backend_statsz;
        std::vector<double> sweep_qps;
        std::vector<double> sweep_connections;
        bool closed_loop = false;
        std::string sweep_json;
        obs::ReportCli report_cli;

        for (int i = 1; i < argc; ++i) {
            if (report_cli.consume(argc, argv, i))
                continue;
            std::string arg = argv[i];
            std::string value;
            if (cli::matchValueFlag(argc, argv, i, "--host",
                                    value)) {
                host = value;
            } else if (cli::matchValueFlag(argc, argv, i, "--port",
                                           value)) {
                port = static_cast<uint16_t>(
                    cli::parseUint64(value, "--port", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i, "--qps",
                                           value)) {
                qps = std::strtod(value.c_str(), nullptr);
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--connections",
                                           value)) {
                connections = static_cast<size_t>(cli::parseUint64(
                    value, "--connections", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--duration-s",
                                           value)) {
                duration_s = std::strtod(value.c_str(), nullptr);
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--endpoint", value)) {
                endpoint = value;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--payloads", value)) {
                payload_count = static_cast<size_t>(
                    cli::parseUint64(value, "--payloads",
                                     argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--corpus", value)) {
                corpus_dir = value;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--sample-seed",
                                           value)) {
                seeded_sampling = true;
                sample_seed = cli::parseSeed(value, argv[0]);
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--statsz", value)) {
                // Validates host:port up front.
                cluster::parseBackendAddress(value);
                backend_statsz.push_back(value);
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--sweep", value)) {
                sweep_qps = parseNumberList(value, "--sweep",
                                            argv[0]);
            } else if (cli::matchValueFlag(
                           argc, argv, i, "--sweep-connections",
                           value)) {
                sweep_connections = parseNumberList(
                    value, "--sweep-connections", argv[0]);
                closed_loop = true;
            } else if (arg == "--closed-loop") {
                closed_loop = true;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--sweep-json",
                                           value)) {
                sweep_json = value;
            } else {
                cli::usageError(argv[0], "unknown argument \"" +
                                             arg + "\"");
            }
        }
        if (port == 0) {
            cli::usageError(
                argv[0],
                "--port is required (parchmintd prints its "
                "bound port and can write --port-file)");
        }
        if (connections == 0)
            connections = 1;
        if (payload_count == 0)
            payload_count = 1;
        if (!sweep_qps.empty() && closed_loop)
            cli::usageError(argv[0],
                            "--sweep is open-loop; use "
                            "--sweep-connections with "
                            "--closed-loop");
        // Short endpoint names map onto /v1/<name>, so
        // `--endpoint mix` and `--endpoint /v1/mix` coincide.
        if (!endpoint.empty() && endpoint[0] != '/')
            endpoint = "/v1/" + endpoint;
        report_cli.enableIfRequested();

        svc::HttpClient setup(host, port);
        std::vector<std::string> payloads;
        if (!corpus_dir.empty()) {
            // Generated-corpus payloads: stream the first N intact
            // netlists through the hash-verifying reader. Dilute
            // takes concentration specs, not netlists, so the two
            // sources do not compose.
            if (endpoint == "/v1/dilute")
                cli::usageError(argv[0],
                                "--corpus drives netlist "
                                "endpoints; /v1/dilute takes "
                                "concentration specs");
            gen::CorpusReader reader(corpus_dir);
            gen::CorpusEntry entry;
            std::string text;
            while (payloads.size() < payload_count &&
                   reader.next(entry, text))
                payloads.push_back(std::move(text));
            for (const std::string &warning : reader.warnings())
                std::fprintf(stderr, "loadgen: corpus: %s\n",
                             warning.c_str());
            if (payloads.empty())
                fatal("no intact netlists in corpus \"" +
                      corpus_dir + "\"");
        } else if (endpoint == "/v1/dilute") {
            // Dilution requests are concentration specs, not
            // netlists: synthesize N deterministic payloads with
            // distinct targets so the cycling repeat pattern
            // still feeds the result cache.
            for (size_t i = 0; i < payload_count; ++i) {
                double target =
                    static_cast<double>(i + 1) /
                    static_cast<double>(payload_count + 1);
                char body[96];
                std::snprintf(body, sizeof body,
                              "{\"target\": %.6f, "
                              "\"tolerance\": 0.00390625}",
                              target);
                payloads.emplace_back(body);
            }
        } else {
            // Pull real suite netlists to use as request bodies.
            svc::HttpResponse index = setup.get("/v1/suite");
            if (index.status != 200)
                fatal("GET /v1/suite returned " +
                      std::to_string(index.status));
            json::Value suite = json::parse(index.body);
            const json::Value &benchmarks = suite.at("benchmarks");
            for (size_t i = 0;
                 i < benchmarks.size() && payloads.size() <
                                              payload_count;
                 ++i) {
                std::string name =
                    benchmarks.at(i).at("name").asString();
                svc::HttpResponse netlist =
                    setup.get("/v1/suite/" + name);
                if (netlist.status != 200)
                    continue;
                payloads.push_back(std::move(netlist.body));
            }
        }
        if (payloads.empty())
            fatal("no usable suite payloads");

        // The points this run will drive.
        std::vector<PointSpec> points;
        if (!sweep_qps.empty()) {
            for (double value : sweep_qps)
                points.push_back(
                    PointSpec{value, connections, false});
        } else if (!sweep_connections.empty()) {
            for (double value : sweep_connections)
                points.push_back(PointSpec{
                    0.0, static_cast<size_t>(value), true});
        } else {
            points.push_back(
                PointSpec{qps, connections, closed_loop});
        }

        std::printf("loadgen: %zu payload(s)%s against %s%s%s"
                    "%s, %zu point(s)\n",
                    payloads.size(),
                    corpus_dir.empty() ? "" : " from corpus",
                    host.c_str(), endpoint.c_str(),
                    seeded_sampling ? " (seeded sampling)" : "",
                    closed_loop ? " (closed loop)" : "",
                    points.size());

        // Baseline backend counters: the per-run 5xx gate diffs
        // against these at the end.
        std::vector<StatszCounters> backends_before;
        for (const std::string &address : backend_statsz) {
            auto [bhost, bport] =
                cluster::parseBackendAddress(address);
            svc::HttpClient probe(bhost, bport);
            backends_before.push_back(
                parseStatsz(probe.get("/statsz").body));
        }

        using Clock = std::chrono::steady_clock;
        std::vector<PointOutcome> outcomes;
        obs::Histogram all_latency;
        uint64_t total_requests = 0;
        uint64_t total_5xx = 0;
        uint64_t total_transport = 0;

        for (const PointSpec &point : points) {
            if (points.size() > 1)
                std::printf("loadgen: point %s%.0f "
                            "connections=%zu\n",
                            point.closedLoop ? "closed-loop "
                                             : "qps=",
                            point.closedLoop
                                ? static_cast<double>(
                                      point.connections)
                                : point.qps,
                            point.connections);
            StatszCounters before =
                parseStatsz(setup.get("/statsz").body);

            // Paced open-loop per connection, or closed-loop
            // fire-on-response when the point asks for it.
            std::vector<WorkerTally> tallies(point.connections);
            std::vector<std::thread> workers;
            Clock::time_point start = Clock::now();
            Clock::time_point deadline =
                start +
                std::chrono::microseconds(static_cast<long>(
                    duration_s * 1e6));
            std::chrono::microseconds interval(
                point.closedLoop
                    ? 0
                    : static_cast<long>(
                          1e6 *
                          static_cast<double>(
                              point.connections) /
                          point.qps));

            for (size_t c = 0; c < point.connections; ++c) {
                workers.emplace_back([&, c] {
                    WorkerTally &tally = tallies[c];
                    svc::HttpClient client(host, port);
                    Clock::time_point next =
                        start + interval * c / point.connections;
                    size_t k = c;
                    // Seeded sampling: each connection owns a
                    // stream derived from (--sample-seed,
                    // connection index), so reruns at fixed C
                    // replay the same draws.
                    Rng sampler(deriveSeed(
                        sample_seed,
                        "loadgen_c" + std::to_string(c)));
                    while (true) {
                        Clock::time_point now = Clock::now();
                        if (now >= deadline)
                            break;
                        if (!point.closedLoop) {
                            if (next > now) {
                                std::this_thread::sleep_until(
                                    next);
                                if (Clock::now() >= deadline)
                                    break;
                            } else {
                                // Behind schedule: skip missed
                                // slots instead of bursting.
                                next = now;
                            }
                            next += interval;
                        }

                        const std::string &body =
                            payloads[seeded_sampling
                                         ? sampler.nextBelow(
                                               payloads.size())
                                         : k++ %
                                               payloads.size()];
                        Clock::time_point sent = Clock::now();
                        try {
                            svc::HttpResponse response =
                                client.post(endpoint, body);
                            double ms = std::chrono::duration<
                                            double, std::milli>(
                                            Clock::now() - sent)
                                            .count();
                            tally.latencyMs.push_back(ms);
                            const std::string *trace =
                                response.findHeader(
                                    "X-Parchmint-Trace");
                            tally.traceIds.push_back(
                                trace != nullptr
                                    ? *trace
                                    : std::string());
                            if (response.status >= 500)
                                ++tally.status5xx;
                            else if (response.status >= 400)
                                ++tally.status4xx;
                            else
                                ++tally.ok;
                        } catch (const UserError &error) {
                            // The first few reasons per
                            // connection go to stderr; the rest
                            // would repeat them.
                            if (++tally.transportErrors <= 3) {
                                std::fprintf(
                                    stderr,
                                    "loadgen: connection %zu: "
                                    "%s\n",
                                    c, error.what());
                            }
                        }
                    }
                });
            }
            for (std::thread &worker : workers)
                worker.join();
            double elapsed_s =
                std::chrono::duration<double>(Clock::now() -
                                              start)
                    .count();

            StatszCounters after =
                parseStatsz(setup.get("/statsz").body);

            // Merge the per-thread tallies.
            obs::Histogram latency;
            WorkerTally total;
            std::vector<std::pair<double, std::string>> traced;
            for (const WorkerTally &tally : tallies) {
                for (size_t i = 0; i < tally.latencyMs.size();
                     ++i) {
                    latency.record(tally.latencyMs[i]);
                    all_latency.record(tally.latencyMs[i]);
                    traced.emplace_back(tally.latencyMs[i],
                                        tally.traceIds[i]);
                }
                total.ok += tally.ok;
                total.status4xx += tally.status4xx;
                total.status5xx += tally.status5xx;
                total.transportErrors += tally.transportErrors;
            }
            uint64_t requests =
                total.ok + total.status4xx + total.status5xx;
            obs::HistogramSummary summary = latency.summary();
            double throughput =
                elapsed_s > 0.0
                    ? static_cast<double>(requests) / elapsed_s
                    : 0.0;
            int64_t delta_hits = after.hits - before.hits;
            int64_t delta_misses = after.misses - before.misses;
            double hit_rate =
                delta_hits + delta_misses > 0
                    ? static_cast<double>(delta_hits) /
                          static_cast<double>(delta_hits +
                                              delta_misses)
                    : 0.0;

            std::printf(
                "loadgen: requests=%llu ok=%llu status_4xx=%llu "
                "status_5xx=%llu transport_errors=%llu "
                "throughput_rps=%.1f p50_ms=%.2f p95_ms=%.2f "
                "p99_ms=%.2f result_hit_rate=%.3f\n",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(total.ok),
                static_cast<unsigned long long>(total.status4xx),
                static_cast<unsigned long long>(total.status5xx),
                static_cast<unsigned long long>(
                    total.transportErrors),
                throughput, summary.p50, summary.p95,
                summary.p99, hit_rate);

            // Name the slowest requests so they can be looked up
            // at the server's /tracez (and grepped in its /logz
            // lines).
            size_t slow_count =
                std::min<size_t>(5, traced.size());
            std::partial_sort(
                traced.begin(), traced.begin() + slow_count,
                traced.end(),
                [](const auto &a, const auto &b) {
                    return a.first > b.first;
                });
            for (size_t i = 0; i < slow_count; ++i) {
                std::printf(
                    "loadgen: slow[%zu] ms=%.2f trace=%s\n",
                    i + 1, traced[i].first,
                    traced[i].second.empty()
                        ? "(none)"
                        : traced[i].second.c_str());
            }

            PointOutcome outcome;
            outcome.spec = point;
            outcome.requests = requests;
            outcome.ok = total.ok;
            outcome.status4xx = total.status4xx;
            outcome.status5xx = total.status5xx;
            outcome.transportErrors = total.transportErrors;
            outcome.elapsedS = elapsed_s;
            outcome.throughputRps = throughput;
            outcome.p50Ms = summary.p50;
            outcome.p95Ms = summary.p95;
            outcome.p99Ms = summary.p99;
            outcome.hitRate = hit_rate;
            outcomes.push_back(outcome);

            total_requests += requests;
            total_5xx += total.status5xx;
            total_transport += total.transportErrors;
        }

        // Per-backend deltas over the whole run: cache hit rates
        // show how well the ring sharded, and any backend-side
        // 5xx fails the run even if the router shielded clients.
        bool backend_5xx = false;
        for (size_t b = 0; b < backend_statsz.size(); ++b) {
            auto [bhost, bport] =
                cluster::parseBackendAddress(backend_statsz[b]);
            svc::HttpClient probe(bhost, bport);
            StatszCounters after =
                parseStatsz(probe.get("/statsz").body);
            const StatszCounters &before = backends_before[b];
            int64_t delta_hits = after.hits - before.hits;
            int64_t delta_misses =
                after.misses - before.misses;
            int64_t delta_5xx =
                after.responses5xx - before.responses5xx;
            double hit_rate =
                delta_hits + delta_misses > 0
                    ? static_cast<double>(delta_hits) /
                          static_cast<double>(delta_hits +
                                              delta_misses)
                    : 0.0;
            std::printf(
                "loadgen: backend[%s] result_hit_rate=%.3f "
                "delta_hits=%lld delta_misses=%lld "
                "status_5xx_delta=%lld\n",
                backend_statsz[b].c_str(), hit_rate,
                static_cast<long long>(delta_hits),
                static_cast<long long>(delta_misses),
                static_cast<long long>(delta_5xx));
            if (delta_5xx > 0)
                backend_5xx = true;
        }

        if (!sweep_json.empty()) {
            json::Value points_out = json::Value::makeArray();
            for (const PointOutcome &outcome : outcomes) {
                json::Value entry = json::Value::makeObject();
                entry.set("mode",
                          json::Value(outcome.spec.closedLoop
                                          ? "closed"
                                          : "open"));
                entry.set("offered_qps",
                          json::Value(outcome.spec.qps));
                entry.set("connections",
                          json::Value(static_cast<int64_t>(
                              outcome.spec.connections)));
                entry.set("requests",
                          json::Value(static_cast<int64_t>(
                              outcome.requests)));
                entry.set("ok", json::Value(static_cast<int64_t>(
                                    outcome.ok)));
                entry.set("status_4xx",
                          json::Value(static_cast<int64_t>(
                              outcome.status4xx)));
                entry.set("status_5xx",
                          json::Value(static_cast<int64_t>(
                              outcome.status5xx)));
                entry.set("transport_errors",
                          json::Value(static_cast<int64_t>(
                              outcome.transportErrors)));
                entry.set("elapsed_s",
                          json::Value(outcome.elapsedS));
                entry.set("throughput_rps",
                          json::Value(outcome.throughputRps));
                entry.set("p50_ms", json::Value(outcome.p50Ms));
                entry.set("p95_ms", json::Value(outcome.p95Ms));
                entry.set("p99_ms", json::Value(outcome.p99Ms));
                entry.set("result_hit_rate",
                          json::Value(outcome.hitRate));
                points_out.append(std::move(entry));
            }
            json::Value sweep_out = json::Value::makeObject();
            sweep_out.set(
                "schema",
                json::Value("parchmint-loadgen-sweep-v1"));
            sweep_out.set("endpoint", json::Value(endpoint));
            sweep_out.set("duration_s",
                          json::Value(duration_s));
            sweep_out.set("payloads",
                          json::Value(static_cast<int64_t>(
                              payloads.size())));
            sweep_out.set("points", std::move(points_out));
            json::WriteOptions options;
            options.pretty = true;
            std::string text = json::write(sweep_out, options);
            FILE *f = std::fopen(sweep_json.c_str(), "w");
            if (!f)
                fatal("cannot write --sweep-json \"" +
                      sweep_json + "\"");
            std::fputs(text.c_str(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("loadgen: sweep written to %s\n",
                        sweep_json.c_str());
        }

        if (report_cli.requested()) {
            obs::Registry &registry = obs::registry();
            for (double ms : all_latency.samples())
                registry.record("loadgen.request.ms", ms);
            registry.add("loadgen.requests",
                         static_cast<int64_t>(total_requests));
            registry.add("loadgen.errors.5xx",
                         static_cast<int64_t>(total_5xx));
            registry.add(
                "loadgen.errors.transport",
                static_cast<int64_t>(total_transport));
            if (!outcomes.empty()) {
                registry.setGauge(
                    "loadgen.throughput.rps",
                    outcomes.back().throughputRps);
                registry.setGauge("loadgen.result_hit_rate",
                                  outcomes.back().hitRate);
            }
        }
        report_cli.finish(
            "loadgen",
            {{"endpoint", endpoint},
             {"qps", std::to_string(qps)},
             {"connections", std::to_string(connections)},
             {"points", std::to_string(outcomes.size())},
             {"requests", std::to_string(total_requests)},
             {"corpus", corpus_dir}});

        return total_5xx > 0 || total_transport > 0 ||
                       backend_5xx
                   ? 1
                   : 0;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
