/**
 * @file
 * loadgen: closed-plus-paced load generator for parchmintd.
 *
 * Run:  ./loadgen --port P [--host ADDR] [--qps Q]
 *           [--connections C] [--duration-s S]
 *           [--endpoint /v1/validate] [--payloads N]
 *           [--corpus DIR] [--sample-seed S]
 *           [--report report.json] [--history history.jsonl]
 *
 * --endpoint also accepts short names (validate, characterize,
 * place, route, mix, dilute, schedule), which map onto /v1/<name>.
 *
 * Each of the C connections is a thread with its own keep-alive
 * HTTP client, paced at Q/C requests per second. The request
 * bodies are real suite netlists pulled from the server's own
 * /v1/suite registry at startup (N distinct payloads, cycled), so
 * the run exercises the full parse → pipeline → cache path with
 * representative documents and a repeat pattern the
 * content-addressed cache is expected to absorb. The dilute
 * endpoint takes concentration specs instead of netlists, so for
 * it loadgen synthesizes N deterministic spec payloads (distinct
 * targets, fixed tolerance) with the same cycling repeat pattern.
 *
 * `--corpus DIR` swaps the payload source for a generated corpus
 * directory (gen_suite generate): the first N intact netlists are
 * read locally via the hash-verifying corpus reader and driven
 * against the endpoint. Payloads cycle round-robin by default;
 * `--sample-seed S` switches to seeded random sampling (each
 * connection draws from its own deriveSeed(S, connection) stream,
 * so a run is reproducible at fixed C).
 *
 * On completion it compares /statsz cache counters from before and
 * after the run, prints a latency summary (p50/p95/p99 from
 * obs::Histogram), and emits one greppable line:
 *
 *   loadgen: requests=N ok=N status_4xx=0 status_5xx=0
 *     transport_errors=0 throughput_rps=X p50_ms=X p95_ms=X
 *     p99_ms=X result_hit_rate=X.XX
 *
 * followed by the five slowest requests with the trace IDs the
 * server echoed in X-Parchmint-Trace —
 *
 *   loadgen: slow[1] ms=12.34 trace=4f2a9c...
 *
 * — so a tail-latency outlier can be looked up at the server's
 * /tracez (per-stage timings) and grepped in its /logz lines.
 *
 * Exit status is 1 when any 5xx or transport error occurred (429s
 * are counted but are not failures — rejecting work under overload
 * is the server behaving as designed).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "gen/corpus.hh"
#include "json/parse.hh"
#include "json/value.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/report_cli.hh"
#include "svc/client.hh"

using namespace parchmint;

namespace
{

/** What one connection thread tallies. */
struct WorkerTally
{
    std::vector<double> latencyMs;
    /** Trace ID echoed by the server per request, aligned with
     * latencyMs so the slowest requests can be named. */
    std::vector<std::string> traceIds;
    uint64_t ok = 0;
    uint64_t status4xx = 0;
    uint64_t status5xx = 0;
    uint64_t transportErrors = 0;
};

/** Result-cache hit/miss counters pulled out of a /statsz body. */
struct CacheCounters
{
    int64_t hits = 0;
    int64_t misses = 0;
};

CacheCounters
resultCacheCounters(const std::string &statszBody)
{
    CacheCounters counters;
    json::Value document = json::parse(statszBody);
    const json::Value &result =
        document.at("cache").at("result");
    counters.hits = result.at("hits").asInteger();
    counters.misses = result.at("misses").asInteger();
    return counters;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        std::string host = "127.0.0.1";
        uint16_t port = 0;
        double qps = 100.0;
        size_t connections = 4;
        double duration_s = 5.0;
        std::string endpoint = "/v1/validate";
        size_t payload_count = 4;
        std::string corpus_dir;
        bool seeded_sampling = false;
        uint64_t sample_seed = 0;
        obs::ReportCli report_cli;

        for (int i = 1; i < argc; ++i) {
            if (report_cli.consume(argc, argv, i))
                continue;
            std::string arg = argv[i];
            std::string value;
            if (cli::matchValueFlag(argc, argv, i, "--host",
                                    value)) {
                host = value;
            } else if (cli::matchValueFlag(argc, argv, i, "--port",
                                           value)) {
                port = static_cast<uint16_t>(
                    cli::parseUint64(value, "--port", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i, "--qps",
                                           value)) {
                qps = std::strtod(value.c_str(), nullptr);
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--connections",
                                           value)) {
                connections = static_cast<size_t>(cli::parseUint64(
                    value, "--connections", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--duration-s",
                                           value)) {
                duration_s = std::strtod(value.c_str(), nullptr);
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--endpoint", value)) {
                endpoint = value;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--payloads", value)) {
                payload_count = static_cast<size_t>(
                    cli::parseUint64(value, "--payloads",
                                     argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--corpus", value)) {
                corpus_dir = value;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--sample-seed",
                                           value)) {
                seeded_sampling = true;
                sample_seed = cli::parseSeed(value, argv[0]);
            } else {
                cli::usageError(argv[0], "unknown argument \"" +
                                             arg + "\"");
            }
        }
        if (port == 0) {
            cli::usageError(
                argv[0],
                "--port is required (parchmintd prints its "
                "bound port and can write --port-file)");
        }
        if (connections == 0)
            connections = 1;
        if (payload_count == 0)
            payload_count = 1;
        // Short endpoint names map onto /v1/<name>, so
        // `--endpoint mix` and `--endpoint /v1/mix` coincide.
        if (!endpoint.empty() && endpoint[0] != '/')
            endpoint = "/v1/" + endpoint;
        report_cli.enableIfRequested();

        svc::HttpClient setup(host, port);
        std::vector<std::string> payloads;
        if (!corpus_dir.empty()) {
            // Generated-corpus payloads: stream the first N intact
            // netlists through the hash-verifying reader. Dilute
            // takes concentration specs, not netlists, so the two
            // sources do not compose.
            if (endpoint == "/v1/dilute")
                cli::usageError(argv[0],
                                "--corpus drives netlist "
                                "endpoints; /v1/dilute takes "
                                "concentration specs");
            gen::CorpusReader reader(corpus_dir);
            gen::CorpusEntry entry;
            std::string text;
            while (payloads.size() < payload_count &&
                   reader.next(entry, text))
                payloads.push_back(std::move(text));
            for (const std::string &warning : reader.warnings())
                std::fprintf(stderr, "loadgen: corpus: %s\n",
                             warning.c_str());
            if (payloads.empty())
                fatal("no intact netlists in corpus \"" +
                      corpus_dir + "\"");
        } else if (endpoint == "/v1/dilute") {
            // Dilution requests are concentration specs, not
            // netlists: synthesize N deterministic payloads with
            // distinct targets so the cycling repeat pattern
            // still feeds the result cache.
            for (size_t i = 0; i < payload_count; ++i) {
                double target =
                    static_cast<double>(i + 1) /
                    static_cast<double>(payload_count + 1);
                char body[96];
                std::snprintf(body, sizeof body,
                              "{\"target\": %.6f, "
                              "\"tolerance\": 0.00390625}",
                              target);
                payloads.emplace_back(body);
            }
        } else {
            // Pull real suite netlists to use as request bodies.
            svc::HttpResponse index = setup.get("/v1/suite");
            if (index.status != 200)
                fatal("GET /v1/suite returned " +
                      std::to_string(index.status));
            json::Value suite = json::parse(index.body);
            const json::Value &benchmarks = suite.at("benchmarks");
            for (size_t i = 0;
                 i < benchmarks.size() && payloads.size() <
                                              payload_count;
                 ++i) {
                std::string name =
                    benchmarks.at(i).at("name").asString();
                svc::HttpResponse netlist =
                    setup.get("/v1/suite/" + name);
                if (netlist.status != 200)
                    continue;
                payloads.push_back(std::move(netlist.body));
            }
        }
        if (payloads.empty())
            fatal("no usable suite payloads");
        std::printf("loadgen: %zu payload(s)%s, "
                    "%zu connection(s), "
                    "%.0f qps for %.1f s against %s%s%s\n",
                    payloads.size(),
                    corpus_dir.empty() ? "" : " from corpus",
                    connections, qps, duration_s, host.c_str(),
                    endpoint.c_str(),
                    seeded_sampling ? " (seeded sampling)"
                                    : "");

        CacheCounters before =
            resultCacheCounters(setup.get("/statsz").body);

        // Paced open-loop per connection: each thread owns one
        // keep-alive client and fires every C/Q seconds against
        // its own schedule, skipping slots it cannot keep (no
        // coordinated-omission backlog bursts).
        using Clock = std::chrono::steady_clock;
        std::vector<WorkerTally> tallies(connections);
        std::vector<std::thread> workers;
        Clock::time_point start = Clock::now();
        Clock::time_point deadline =
            start + std::chrono::microseconds(static_cast<long>(
                        duration_s * 1e6));
        std::chrono::microseconds interval(static_cast<long>(
            1e6 * static_cast<double>(connections) / qps));

        for (size_t c = 0; c < connections; ++c) {
            workers.emplace_back([&, c] {
                WorkerTally &tally = tallies[c];
                svc::HttpClient client(host, port);
                Clock::time_point next =
                    start + interval * c / connections;
                size_t k = c;
                // Seeded sampling: each connection owns a stream
                // derived from (--sample-seed, connection index),
                // so reruns at fixed C replay the same draws.
                Rng sampler(deriveSeed(
                    sample_seed,
                    "loadgen_c" + std::to_string(c)));
                while (true) {
                    Clock::time_point now = Clock::now();
                    if (now >= deadline)
                        break;
                    if (next > now) {
                        std::this_thread::sleep_until(next);
                        if (Clock::now() >= deadline)
                            break;
                    } else {
                        // Behind schedule: skip missed slots
                        // instead of bursting.
                        next = now;
                    }
                    next += interval;

                    const std::string &body =
                        payloads[seeded_sampling
                                     ? sampler.nextBelow(
                                           payloads.size())
                                     : k++ % payloads.size()];
                    Clock::time_point sent = Clock::now();
                    try {
                        svc::HttpResponse response =
                            client.post(endpoint, body);
                        double ms =
                            std::chrono::duration<double,
                                                  std::milli>(
                                Clock::now() - sent)
                                .count();
                        tally.latencyMs.push_back(ms);
                        const std::string *trace =
                            response.findHeader(
                                "X-Parchmint-Trace");
                        tally.traceIds.push_back(
                            trace != nullptr ? *trace
                                             : std::string());
                        if (response.status >= 500)
                            ++tally.status5xx;
                        else if (response.status >= 400)
                            ++tally.status4xx;
                        else
                            ++tally.ok;
                    } catch (const UserError &error) {
                        // The first few reasons per connection go
                        // to stderr; the rest would repeat them.
                        if (++tally.transportErrors <= 3) {
                            std::fprintf(
                                stderr,
                                "loadgen: connection %zu: %s\n",
                                c, error.what());
                        }
                    }
                }
            });
        }
        for (std::thread &worker : workers)
            worker.join();
        double elapsed_s =
            std::chrono::duration<double>(Clock::now() - start)
                .count();

        CacheCounters after =
            resultCacheCounters(setup.get("/statsz").body);

        // Merge the per-thread tallies.
        obs::Histogram latency;
        WorkerTally total;
        std::vector<std::pair<double, std::string>> traced;
        for (const WorkerTally &tally : tallies) {
            for (size_t i = 0; i < tally.latencyMs.size(); ++i) {
                latency.record(tally.latencyMs[i]);
                traced.emplace_back(tally.latencyMs[i],
                                    tally.traceIds[i]);
            }
            total.ok += tally.ok;
            total.status4xx += tally.status4xx;
            total.status5xx += tally.status5xx;
            total.transportErrors += tally.transportErrors;
        }
        uint64_t requests =
            total.ok + total.status4xx + total.status5xx;
        obs::HistogramSummary summary = latency.summary();
        double throughput =
            elapsed_s > 0.0
                ? static_cast<double>(requests) / elapsed_s
                : 0.0;
        int64_t delta_hits = after.hits - before.hits;
        int64_t delta_misses = after.misses - before.misses;
        double hit_rate =
            delta_hits + delta_misses > 0
                ? static_cast<double>(delta_hits) /
                      static_cast<double>(delta_hits +
                                          delta_misses)
                : 0.0;

        std::printf(
            "loadgen: requests=%llu ok=%llu status_4xx=%llu "
            "status_5xx=%llu transport_errors=%llu "
            "throughput_rps=%.1f p50_ms=%.2f p95_ms=%.2f "
            "p99_ms=%.2f result_hit_rate=%.3f\n",
            static_cast<unsigned long long>(requests),
            static_cast<unsigned long long>(total.ok),
            static_cast<unsigned long long>(total.status4xx),
            static_cast<unsigned long long>(total.status5xx),
            static_cast<unsigned long long>(
                total.transportErrors),
            throughput, summary.p50, summary.p95, summary.p99,
            hit_rate);

        // Name the slowest requests so they can be looked up at
        // the server's /tracez (and grepped in its /logz lines).
        size_t slow_count = std::min<size_t>(5, traced.size());
        std::partial_sort(
            traced.begin(), traced.begin() + slow_count,
            traced.end(),
            [](const auto &a, const auto &b) {
                return a.first > b.first;
            });
        for (size_t i = 0; i < slow_count; ++i) {
            std::printf("loadgen: slow[%zu] ms=%.2f trace=%s\n",
                        i + 1, traced[i].first,
                        traced[i].second.empty()
                            ? "(none)"
                            : traced[i].second.c_str());
        }

        if (report_cli.requested()) {
            obs::Registry &registry = obs::registry();
            for (double ms : latency.samples())
                registry.record("loadgen.request.ms", ms);
            registry.add("loadgen.requests",
                         static_cast<int64_t>(requests));
            registry.add("loadgen.errors.5xx",
                         static_cast<int64_t>(total.status5xx));
            registry.add(
                "loadgen.errors.transport",
                static_cast<int64_t>(total.transportErrors));
            registry.setGauge("loadgen.throughput.rps",
                              throughput);
            registry.setGauge("loadgen.result_hit_rate",
                              hit_rate);
        }
        report_cli.finish(
            "loadgen",
            {{"endpoint", endpoint},
             {"qps", std::to_string(qps)},
             {"connections", std::to_string(connections)},
             {"requests", std::to_string(requests)},
             {"corpus", corpus_dir}});

        return total.status5xx > 0 || total.transportErrors > 0
                   ? 1
                   : 0;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
