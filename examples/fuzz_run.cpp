/**
 * @file
 * Deterministic fuzzing & property-testing driver (src/fuzz/).
 *
 * Run:  ./fuzz_run [--target NAME|all] [--iters N] [--time-ms M]
 *           [--seed S] [--jobs N] [--corpus-dir DIR]
 *           [--max-findings N] [--shrink-attempts N] [--list]
 *           [--report report.json] [--history history.jsonl]
 *
 * `--target` may repeat; `all` (the default) runs every registered
 * target. `--import FILE` (repeatable; requires exactly one
 * --target and --corpus-dir) skips fuzzing and instead records the
 * file's bytes as a content-addressed corpus entry for that
 * target — the curation path for hand-written regression seeds. Determinism guarantee: with a pinned --iters and --seed,
 * iteration i of target T derives its RNG stream from
 * deriveSeed(seed, "T#i"), so `--jobs N` executes exactly the same
 * inputs as `--jobs 1` and reports identical findings. A --time-ms
 * budget (split evenly across targets) instead bounds how many of
 * those iterations run, so only --iters-bounded runs are
 * bit-reproducible. Each distinct failure is greedily shrunk and,
 * with --corpus-dir, dumped as a content-addressed reproducer
 * (<dir>/<target>/<hash>.input + .json metadata) that
 * tests/fuzz_regression_test.cc replays when checked in under
 * fuzz/corpus/.
 *
 * Exit status: 0 when every target is clean, 1 when findings (or a
 * runtime error) occurred, 2 on a usage error.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/error.hh"
#include "fuzz/corpus.hh"
#include "fuzz/engine.hh"
#include "obs/obs.hh"
#include "obs/report_cli.hh"

using namespace parchmint;

namespace
{

void
listTargets()
{
    for (const fuzz::Target &target : fuzz::allTargets()) {
        std::printf("%-18s %s\n", target.name.c_str(),
                    target.description.c_str());
    }
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream stream(path, std::ios::binary);
    if (!stream)
        fatal("cannot read \"" + path + "\"");
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    return buffer.str();
}

/** Record hand-written seed files as corpus entries. */
int
importSeeds(const fuzz::RunOptions &options,
            const std::vector<std::string> &paths,
            const char *program)
{
    if (options.targets.size() != 1) {
        cli::usageError(program, "--import requires exactly one "
                                 "--target");
    }
    if (options.corpusDir.empty())
        cli::usageError(program, "--import requires --corpus-dir");
    const fuzz::Target &target =
        fuzz::findTarget(options.targets.front());
    for (const std::string &path : paths) {
        fuzz::CorpusEntry entry;
        entry.targetName = target.name;
        entry.input = readFileBytes(path);
        std::optional<std::string> failure =
            fuzz::runCheck(target, entry.input);
        entry.message = failure ? *failure : "seed";
        std::string written =
            fuzz::writeCorpusEntry(options.corpusDir, entry);
        std::printf("%s -> %s (%s)\n", path.c_str(),
                    written.c_str(), entry.message.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        fuzz::RunOptions options;
        options.iters = 10000;
        std::vector<std::string> imports;
        obs::ReportCli report_cli;

        for (int i = 1; i < argc; ++i) {
            if (report_cli.consume(argc, argv, i))
                continue;
            std::string arg = argv[i];
            std::string value;
            if (cli::matchValueFlag(argc, argv, i, "--target",
                                    value)) {
                if (value != "all")
                    options.targets.push_back(value);
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--iters", value)) {
                options.iters =
                    cli::parseUint64(value, "--iters", argv[0]);
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--time-ms", value)) {
                options.timeMs = static_cast<int64_t>(
                    cli::parseUint64(value, "--time-ms", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i, "--seed",
                                           value)) {
                options.seed = cli::parseSeed(value, argv[0]);
            } else if (cli::matchValueFlag(argc, argv, i, "--jobs",
                                           value)) {
                options.jobs = static_cast<size_t>(
                    cli::parseUint64(value, "--jobs", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--corpus-dir", value)) {
                options.corpusDir = value;
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--max-findings",
                                           value)) {
                options.maxFindingsPerTarget =
                    static_cast<size_t>(cli::parseUint64(
                        value, "--max-findings", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--shrink-attempts",
                                           value)) {
                options.shrinkAttempts =
                    static_cast<size_t>(cli::parseUint64(
                        value, "--shrink-attempts", argv[0]));
            } else if (cli::matchValueFlag(argc, argv, i,
                                           "--import", value)) {
                imports.push_back(value);
            } else if (arg == "--list") {
                listTargets();
                return 0;
            } else {
                cli::usageError(
                    argv[0], "unknown flag \"" + arg + "\"",
                    "usage: fuzz_run [--target NAME|all] "
                    "[--iters N] [--time-ms M] [--seed S] "
                    "[--jobs N] [--corpus-dir DIR] "
                    "[--max-findings N] [--shrink-attempts N] "
                    "[--import FILE] [--list] [--report F] "
                    "[--history F]");
            }
        }
        if (!imports.empty())
            return importSeeds(options, imports, argv[0]);
        report_cli.enableIfRequested();

        fuzz::RunSummary summary = fuzz::runFuzz(options);

        for (const fuzz::TargetStats &stats : summary.targets) {
            std::printf(
                "%-18s %10llu execs  %6.0f execs/s  %zu finding(s)\n",
                stats.name.c_str(),
                static_cast<unsigned long long>(stats.executions),
                stats.execsPerSecond(), stats.findings);
        }
        for (const fuzz::Finding &finding : summary.findings) {
            std::printf("FINDING %s iter=%llu bytes=%zu<-%zu: %s\n",
                        finding.targetName.c_str(),
                        static_cast<unsigned long long>(
                            finding.iteration),
                        finding.input.size(),
                        finding.originalBytes,
                        finding.message.c_str());
            if (!finding.corpusPath.empty()) {
                std::printf("  reproducer: %s  (--seed %llu)\n",
                            finding.corpusPath.c_str(),
                            static_cast<unsigned long long>(
                                options.seed));
            }
        }
        double wall_ms =
            static_cast<double>(summary.wallUs) / 1000.0;
        std::printf("%llu exec(s) over %zu target(s), %zu "
                    "worker(s), %.1f ms wall, %zu finding(s)\n",
                    static_cast<unsigned long long>(
                        summary.executions),
                    summary.targets.size(), summary.workers,
                    wall_ms, summary.findings.size());

        report_cli.finish(
            "fuzz_run",
            {{"seed", std::to_string(options.seed)},
             {"jobs", std::to_string(summary.workers)},
             {"executions", std::to_string(summary.executions)},
             {"findings",
              std::to_string(summary.findings.size())}});
        return summary.clean() ? 0 : 1;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
