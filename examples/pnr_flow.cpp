/**
 * @file
 * Physical design flow: place and route a suite benchmark, then
 * write the routed netlist (ParchMint JSON with positions and
 * paths) and an SVG rendering.
 *
 * Run:  ./pnr_flow [benchmark] [seed]
 *
 * Defaults to the cell_trap_array benchmark. Benchmark names are
 * the standard suite names (see DESIGN.md or run ./characterize).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/error.hh"
#include "core/serialize.hh"
#include "export/svg.hh"
#include "place/annealing_placer.hh"
#include "place/cost.hh"
#include "route/metrics.hh"
#include "route/router.hh"
#include "suite/suite.hh"

using namespace parchmint;

int
main(int argc, char **argv)
{
    try {
        std::string name =
            argc > 1 ? argv[1] : "cell_trap_array";
        uint64_t seed =
            argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

        Device device = suite::buildBenchmark(name);
        std::printf("benchmark %s: %zu components, "
                    "%zu connections\n",
                    name.c_str(), device.components().size(),
                    device.connections().size());

        // Place with simulated annealing.
        place::AnnealingOptions options;
        options.seed = seed;
        place::AnnealingPlacer placer(options);
        place::Placement placement = placer.place(device);
        const place::PlacementCost &cost = placer.lastCost();
        std::printf("placement: hpwl=%lld um, overlap=%lld um^2, "
                    "bounding area=%lld um^2\n",
                    static_cast<long long>(cost.hpwl),
                    static_cast<long long>(cost.overlapArea),
                    static_cast<long long>(cost.boundingArea));

        // Route every channel.
        route::RouteResult routed = route::routeDevice(device,
                                                       placement);
        std::printf("routing: %zu/%zu nets routed (%.1f%%), "
                    "length=%lld um, bends=%d, violations=%zu\n",
                    routed.routedCount, routed.nets.size(),
                    100.0 * routed.completionRate(),
                    static_cast<long long>(routed.totalLength),
                    routed.totalBends, routed.totalViolations);

        // Persist physical design state into the netlist.
        placement.writeTo(device);
        saveDevice(name + "_routed.json", device);
        exporter::writeSvg(name + ".svg", device, placement);
        std::printf("wrote %s_routed.json and %s.svg\n",
                    name.c_str(), name.c_str());
        return 0;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
