/**
 * @file
 * Physical design flow: place and route a suite benchmark, validate
 * the routed netlist, then write it out (ParchMint JSON with
 * positions and paths) and an SVG rendering.
 *
 * Run:  ./pnr_flow [benchmark] [seed] [--report report.json]
 *           [--history history.jsonl]
 *
 * Defaults to the cell_trap_array benchmark. Benchmark names are
 * the standard suite names (see DESIGN.md or run ./characterize).
 *
 * With --report, observability is enabled for the run and a
 * run-report JSON artifact is written: nested spans for
 * place/route/validate, the annealing and router counters, and the
 * timing histograms. Open the same file in chrome://tracing to see
 * the flame view (see README.md "Observability"); a collapsed-stack
 * flamegraph export for flamegraph.pl / speedscope lands next to it
 * at `<report>.folded`. With --history, a compact summary record of
 * the run is appended to a JSONL history file (see obs/history.hh)
 * so repeated runs accumulate into a perf trajectory; `report_diff`
 * compares any two reports or records. Both flags accept the
 * space-separated and the `=` spellings.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/error.hh"
#include "core/serialize.hh"
#include "export/svg.hh"
#include "obs/obs.hh"
#include "obs/report_cli.hh"
#include "place/annealing_placer.hh"
#include "place/cost.hh"
#include "route/metrics.hh"
#include "route/router.hh"
#include "schema/rules.hh"
#include "suite/suite.hh"

using namespace parchmint;

int
main(int argc, char **argv)
{
    try {
        std::string name = "cell_trap_array";
        uint64_t seed = 1;
        obs::ReportCli report_cli;

        std::vector<std::string> positional;
        for (int i = 1; i < argc; ++i) {
            if (report_cli.consume(argc, argv, i))
                continue;
            std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                cli::usageError(
                    argv[0], "unknown flag \"" + arg + "\"",
                    "usage: pnr_flow [benchmark] [seed] "
                    "[--report F] [--history F]");
            }
            positional.push_back(std::move(arg));
        }
        if (positional.size() > 0)
            name = positional[0];
        if (positional.size() > 1)
            seed = cli::parseSeed(positional[1], argv[0]);
        report_cli.enableIfRequested();

        Device device = suite::buildBenchmark(name);
        std::printf("benchmark %s: %zu components, "
                    "%zu connections\n",
                    name.c_str(), device.components().size(),
                    device.connections().size());

        place::AnnealingOptions options;
        options.seed = seed;
        place::AnnealingPlacer placer(options);
        place::Placement placement;
        route::RouteResult routed;
        std::vector<schema::Issue> issues;
        {
            // Root span over the whole flow; the scope closes it
            // before the run report is built below.
            PM_OBS_SPAN("pnr_flow", "flow");

            // Place with simulated annealing.
            {
                PM_OBS_SPAN("place", "place");
                placement = placer.place(device);
            }
            const place::PlacementCost &cost = placer.lastCost();
            std::printf("placement: hpwl=%lld um, overlap=%lld "
                        "um^2, bounding area=%lld um^2\n",
                        static_cast<long long>(cost.hpwl),
                        static_cast<long long>(cost.overlapArea),
                        static_cast<long long>(cost.boundingArea));

            // Route every channel.
            {
                PM_OBS_SPAN("route", "route");
                routed = route::routeDevice(device, placement);
            }
            std::printf("routing: %zu/%zu nets routed (%.1f%%), "
                        "length=%lld um, bends=%d, "
                        "violations=%zu, expanded=%zu cells\n",
                        routed.routedCount, routed.nets.size(),
                        100.0 * routed.completionRate(),
                        static_cast<long long>(routed.totalLength),
                        routed.totalBends, routed.totalViolations,
                        routed.totalExpansions);

            // Persist physical design state into the netlist, then
            // validate the routed result before shipping it.
            placement.writeTo(device);
            {
                PM_OBS_SPAN("validate", "validate");
                issues = schema::checkRules(device);
            }
            std::printf("validation: %zu issue(s)%s\n",
                        issues.size(),
                        schema::hasErrors(issues) ? " (ERRORS)"
                                                  : "");
            if (!issues.empty()) {
                std::printf("%s",
                            schema::formatIssues(issues).c_str());
            }
        }

        saveDevice(name + "_routed.json", device);
        exporter::writeSvg(name + ".svg", device, placement);
        std::printf("wrote %s_routed.json and %s.svg\n",
                    name.c_str(), name.c_str());

        report_cli.finish("pnr_flow",
                          {{"benchmark", name},
                           {"seed", std::to_string(seed)}});
        return schema::hasErrors(issues) ? 1 : 0;
    } catch (const UserError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
